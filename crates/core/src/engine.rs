use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::str::FromStr;

use mvq_logic::{Gate, GateLibrary};
use mvq_obs::ProbeHandle;
use mvq_perm::Perm;

use crate::par::{self, FrontierMeta, ShardedSeen};
use crate::snapshot::DeferredFrontier;
use crate::width::{MaskRepr, Narrow, SearchWidth, TraceRepr, WordRepr};
use crate::word::FnvBuildHasher;
use crate::{Circuit, CostModel};

/// A per-level S-trace join index: trace → indices into the level's
/// word vector (the meet-in-the-middle probe structure).
pub(crate) type TraceIndex<T> = HashMap<T, Vec<u32>, FnvBuildHasher>;

/// Per-element search metadata: the word's best-known cost (final once
/// its level is processed — Dijkstra with positive gate costs) and the
/// library-gate index that produced it along the cheapest path so far
/// (`u8::MAX` for the identity seed).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Meta {
    pub(crate) cost: u32,
    pub(crate) last_gate: u8,
}

impl FrontierMeta for Meta {
    fn cost(&self) -> u32 {
        self.cost
    }

    fn with(cost: u32, gate: u8) -> Self {
        Self {
            cost,
            last_gate: gate,
        }
    }
}

/// A reversible-circuit equivalence class discovered by FMCF: the
/// restriction to binary patterns, its minimal cost, and every witness
/// (full domain permutation) found *at that minimal cost*.
#[derive(Debug, Clone)]
pub(crate) struct GClass<W: SearchWidth> {
    pub(crate) cost: u32,
    pub(crate) witnesses: Vec<W::Word>,
}

/// A library that does not fit the engine's packed representations at
/// the chosen [`SearchWidth`].
///
/// Each variant documents the seam it guards; the fix for the first is a
/// wider path-metadata type, for the others a wider [`SearchWidth`]
/// (e.g. [`crate::WideSynthesisEngine`] for 4-wire libraries).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// More gates than path reconstruction can index.
    TooManyGates {
        /// Gates in the library.
        gates: usize,
    },
    /// More domain patterns than the width's words and banned masks hold.
    DomainTooLarge {
        /// Patterns in the domain.
        patterns: usize,
        /// The width's word/mask capacity.
        capacity: usize,
    },
    /// More binary patterns than the width's S-traces pack.
    BinarySetTooLarge {
        /// Binary patterns in the library.
        patterns: usize,
        /// The width's trace slots.
        slots: usize,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::TooManyGates { gates } => write!(
                f,
                "library has {gates} gates, but path reconstruction stores gate \
                 indices in a u8 (at most 255 gates; index 255 is the identity sentinel)"
            ),
            Self::DomainTooLarge { patterns, capacity } => write!(
                f,
                "domain has {patterns} patterns, but this width's banned masks and \
                 packed words support at most {capacity} (use a wider engine width)"
            ),
            Self::BinarySetTooLarge { patterns, slots } => write!(
                f,
                "binary set has {patterns} patterns, but this width's S-traces pack \
                 at most {slots} (one byte per binary pattern; use a wider engine width)"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// The result of a successful MCE synthesis.
#[derive(Debug, Clone)]
pub struct Synthesis {
    /// The synthesized circuit: optional NOT layer followed by the
    /// minimal 2-qubit-gate cascade, in execution order.
    pub circuit: Circuit,
    /// The minimal quantum cost `t` (2-qubit gates only).
    pub cost: u32,
    /// The NOT gates of the Theorem 2 coset layer (`d[0]`; empty when the
    /// target fixes the all-zeros pattern).
    pub not_layer: Vec<Gate>,
    /// The number of distinct minimal-cost implementations the search
    /// level contains for this target (distinct domain permutations
    /// restricting to it — the paper reports 2 for Peres, 4 for Toffoli).
    pub implementation_count: usize,
}

/// The outcome of a read-only [`SearchEngine::synthesize_cached`]
/// query against the cached levels.
#[derive(Debug, Clone)]
pub enum CachedSynthesis {
    /// The cache is authoritative: the minimal circuit within the bound,
    /// or a definitive `None` (identical to what a mutable
    /// [`SearchEngine::synthesize`] call would return).
    Resolved(Option<Synthesis>),
    /// The class is undiscovered and deeper levels could still contain
    /// it — the query must go through an expanding (writer) path.
    NeedsExpansion,
}

/// Which MCE front-end a query should use.
///
/// [`Unidirectional`](SynthesisStrategy::Unidirectional) is the paper's
/// original formulation: expand FMCF levels from the identity until the
/// target's class appears. [`Bidirectional`](SynthesisStrategy::Bidirectional)
/// meets in the middle: a second frontier grows from the target side, so a
/// cost-`2t` target is reached with two cost-`t` level sets instead of one
/// cost-`2t` set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SynthesisStrategy {
    /// Single frontier from the identity (the paper's MCE).
    #[default]
    Unidirectional,
    /// Meet-in-the-middle: identity frontier joined against a frontier
    /// expanded backward from the target.
    Bidirectional,
}

impl FromStr for SynthesisStrategy {
    type Err = String;

    /// Accepts `unidirectional`/`uni` and `bidirectional`/`bidi`
    /// (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "unidirectional" | "uni" => Ok(Self::Unidirectional),
            "bidirectional" | "bidi" => Ok(Self::Bidirectional),
            other => Err(format!(
                "unknown strategy `{other}` (expected `unidirectional` or `bidirectional`)"
            )),
        }
    }
}

impl fmt::Display for SynthesisStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Unidirectional => write!(f, "unidirectional"),
            Self::Bidirectional => write!(f, "bidirectional"),
        }
    }
}

/// The paper's FMCF + MCE engines over one gate library and cost model,
/// generic over the packed [`SearchWidth`] (use the
/// [`crate::SynthesisEngine`] alias for 2–3 wires and
/// [`crate::WideSynthesisEngine`] for 4 wires).
///
/// [`SearchEngine::expand_to_cost`] materializes the sets `A[k]`,
/// `B[k]`, `G[k]` level by level (Section 3's
/// Finding_Minimum_Cost_Circuits); the level data is cached **and
/// indexed by cost**, so repeated syntheses reuse it and per-level scans
/// touch one level instead of the whole search history.
/// [`SearchEngine::synthesize`] runs Minimum_Cost_Expressing on top;
/// [`SearchEngine::synthesize_bidirectional`] is the meet-in-the-middle
/// variant.
///
/// # Examples
///
/// ```
/// use mvq_core::SynthesisEngine;
///
/// let mut engine = SynthesisEngine::unit_cost();
/// engine.expand_to_cost(3);
/// // Table 2, first four columns (verified counts; the paper's printed
/// // row has arithmetic slips at k = 2, 3 — see `EXPECTED_TABLE_2`).
/// assert_eq!(engine.g_counts(), &[1, 6, 24, 51]);
/// ```
#[derive(Debug)]
pub struct SearchEngine<W: SearchWidth> {
    pub(crate) library: GateLibrary,
    pub(crate) model: CostModel,
    /// Per-library-gate 0-based image tables.
    pub(crate) gate_images: Vec<Vec<u8>>,
    /// Per-library-gate inverse image tables (for path reconstruction and
    /// the backward frontier).
    pub(crate) gate_inverse_images: Vec<Vec<u8>>,
    /// Per-library-gate banned masks.
    pub(crate) gate_banned: Vec<W::Mask>,
    /// Per-library-gate costs.
    pub(crate) gate_costs: Vec<u32>,
    /// 0-based domain indices of the binary set `S`, in order.
    pub(crate) binary0: Vec<u8>,
    /// Domain index (0-based) → rank in the binary set, `u8::MAX` if the
    /// pattern is not binary.
    binary_rank: Vec<u8>,
    /// Degree of parallelism for level expansion (1 = serial).
    threads: usize,
    /// Persistent expansion workers (spawned lazily on the first
    /// parallel bucket; shared by the forward frontier, the backward
    /// frontier, and the meet-in-the-middle join, so hot paths never
    /// re-spawn threads).
    pub(crate) pool: par::WorkerPool,
    /// Every discovered element of `A[∞]` with its metadata, sharded by
    /// word hash so parallel expansion can insert without locks.
    pub(crate) seen: ShardedSeen<W::Word, Meta>,
    /// Pending frontier elements keyed by their (exact) cost.
    pub(crate) pending: BTreeMap<u32, Vec<W::Word>>,
    /// Frontier section of a loaded snapshot, parsed and merged into
    /// `seen`/`pending` on first expansion (queries answered from the
    /// cached levels never pay for it). `None` on natively-built engines
    /// and after [`Self::ensure_frontier`].
    pub(crate) deferred_frontier: Option<DeferredFrontier>,
    /// Highest cost whose level has been fully expanded.
    pub(crate) completed: Option<u32>,
    /// `B[k]` for each completed level: the words first reached at exact
    /// cost `k` (gap levels hold empty vectors, so indices equal costs).
    pub(crate) levels: Vec<Vec<W::Word>>,
    /// Per-level S-traces, parallel to `levels` (see [`Self::trace_of`]).
    pub(crate) level_traces: Vec<Vec<W::Trace>>,
    /// Lazily built per-level join index: S-trace → indices into the
    /// level's word vector.
    pub(crate) trace_index: Vec<Option<TraceIndex<W::Trace>>>,
    /// Reversible classes: binary restriction → minimal cost + witnesses.
    pub(crate) classes: HashMap<W::Word, GClass<W>, FnvBuildHasher>,
    /// Per-level index of class keys: the restrictions first realized at
    /// exact cost `k` (gap-filled like `levels`).
    pub(crate) class_levels: Vec<Vec<W::Word>>,
    /// `|G[k]|` for each completed cost level `k`.
    pub(crate) g_counts: Vec<usize>,
    /// `|B[k]|` for each completed cost level `k`.
    pub(crate) b_counts: Vec<usize>,
    /// Optional observability probe (no-op when unset). The engine only
    /// announces events through it — timing happens on the other side
    /// of the trait boundary, so this module never reads the clock and
    /// the determinism lint holds.
    pub(crate) probe: ProbeHandle,
}

impl SearchEngine<Narrow> {
    /// Engine for the paper's setting: 3 wires, 18-gate library, unit
    /// costs.
    pub fn unit_cost() -> Self {
        Self::new(GateLibrary::standard(3), CostModel::unit())
    }

    /// [`Self::unit_cost`] with an explicit degree of parallelism.
    pub fn unit_cost_with_threads(threads: usize) -> Self {
        Self::with_threads(GateLibrary::standard(3), CostModel::unit(), threads)
    }
}

impl<W: SearchWidth> SearchEngine<W> {
    /// Engine over an explicit library and cost model, with the degree of
    /// parallelism resolved from `MVQ_THREADS` / the available
    /// parallelism (see [`crate::resolve_threads`]).
    ///
    /// # Panics
    ///
    /// Panics if the library exceeds the width's packed representations
    /// (see [`Self::try_new`] for the limits and a non-panicking
    /// constructor).
    pub fn new(library: GateLibrary, model: CostModel) -> Self {
        Self::try_new(library, model).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Engine over an explicit library, cost model, and thread count
    /// (`threads = 1` is the serial engine; results are bit-identical
    /// for every thread count).
    ///
    /// # Panics
    ///
    /// Panics under the same library limits as [`Self::new`].
    pub fn with_threads(library: GateLibrary, model: CostModel, threads: usize) -> Self {
        Self::try_with_threads(library, model, threads).unwrap_or_else(|err| panic!("{err}"))
    }

    /// Fallible [`Self::new`] — the form long-lived services should use,
    /// so an over-capacity library surfaces as a typed [`EngineError`]
    /// instead of a worker panic.
    ///
    /// # Errors
    ///
    /// [`EngineError::TooManyGates`] over 255 gates (path metadata stores
    /// gate indices in a `u8`), [`EngineError::DomainTooLarge`] over the
    /// width's word/mask capacity, or [`EngineError::BinarySetTooLarge`]
    /// over the width's S-trace slots.
    pub fn try_new(library: GateLibrary, model: CostModel) -> Result<Self, EngineError> {
        Self::try_with_threads(library, model, par::resolve_threads(None))
    }

    /// Fallible [`Self::with_threads`].
    ///
    /// # Errors
    ///
    /// See [`Self::try_new`].
    pub fn try_with_threads(
        library: GateLibrary,
        model: CostModel,
        threads: usize,
    ) -> Result<Self, EngineError> {
        if library.gates().len() > usize::from(u8::MAX) {
            return Err(EngineError::TooManyGates {
                gates: library.gates().len(),
            });
        }
        if library.domain().len() > W::Word::CAPACITY {
            return Err(EngineError::DomainTooLarge {
                patterns: library.domain().len(),
                capacity: W::Word::CAPACITY,
            });
        }
        if library.binary_set().len() > W::Trace::SLOTS {
            return Err(EngineError::BinarySetTooLarge {
                patterns: library.binary_set().len(),
                slots: W::Trace::SLOTS,
            });
        }
        let gate_images: Vec<Vec<u8>> = library
            .gates()
            .iter()
            .map(|g| g.perm().as_images().to_vec())
            .collect();
        let gate_inverse_images: Vec<Vec<u8>> = library
            .gates()
            .iter()
            .map(|g| g.perm().inverse().as_images().to_vec())
            .collect();
        let gate_banned: Vec<W::Mask> = library
            .gates()
            .iter()
            .map(|g| {
                let mut mask = W::Mask::default();
                for &idx in g.banned_indices() {
                    mask.set_bit(idx - 1);
                }
                mask
            })
            .collect();
        let gate_costs: Vec<u32> = library
            .gates()
            .iter()
            .map(|g| model.cost(g.gate()))
            .collect();
        let binary0: Vec<u8> = library
            .binary_set()
            .iter()
            .map(|&p| (p - 1) as u8)
            .collect();
        let mut binary_rank = vec![u8::MAX; library.domain().len()];
        for (rank, &idx) in binary0.iter().enumerate() {
            binary_rank[idx as usize] = rank as u8;
        }
        let threads = threads.max(1);
        let identity = W::Word::identity(library.domain().len());
        let mut seen: ShardedSeen<W::Word, Meta> = ShardedSeen::for_threads(threads);
        seen.insert(
            identity,
            Meta {
                cost: 0,
                last_gate: u8::MAX,
            },
        );
        let mut pending = BTreeMap::new();
        pending.insert(0u32, vec![identity]);
        Ok(Self {
            library,
            model,
            gate_images,
            gate_inverse_images,
            gate_banned,
            gate_costs,
            binary0,
            binary_rank,
            threads,
            pool: par::WorkerPool::new(threads),
            seen,
            pending,
            deferred_frontier: None,
            completed: None,
            levels: Vec::new(),
            level_traces: Vec::new(),
            trace_index: Vec::new(),
            classes: HashMap::default(),
            class_levels: Vec::new(),
            g_counts: Vec::new(),
            b_counts: Vec::new(),
            probe: ProbeHandle::none(),
        })
    }

    /// Installs (or clears) the observability probe. The engine calls it
    /// around level expansions, parallel bucket staging, bidirectional
    /// split decisions, and snapshot sections; with the default empty
    /// handle every hook is a single branch.
    pub fn set_probe(&mut self, probe: ProbeHandle) {
        self.probe = probe;
    }

    /// The currently installed probe handle.
    pub fn probe(&self) -> &ProbeHandle {
        &self.probe
    }

    /// The gate library in use.
    pub fn library(&self) -> &GateLibrary {
        &self.library
    }

    /// The cost model in use.
    pub fn cost_model(&self) -> &CostModel {
        &self.model
    }

    /// The degree of parallelism used for level expansion.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Re-configures the degree of parallelism. Safe on a warm engine:
    /// the sharded `seen` map is re-bucketed in place and cached levels
    /// are untouched (results stay bit-identical for any thread count).
    pub fn set_threads(&mut self, threads: usize) {
        let threads = threads.max(1);
        self.threads = threads;
        self.pool = par::WorkerPool::new(threads);
        self.seen.reshard_for_threads(threads);
    }

    /// The highest cost whose level has been fully expanded, if any.
    pub fn completed_cost(&self) -> Option<u32> {
        self.completed
    }

    /// `|G[k]|` for every fully expanded level `k = 0, 1, …`.
    pub fn g_counts(&self) -> &[usize] {
        &self.g_counts
    }

    /// `|B[k]|` (new quantum circuits at exact cost `k`) for every fully
    /// expanded level.
    pub fn b_counts(&self) -> &[usize] {
        &self.b_counts
    }

    /// Total number of distinct quantum circuits discovered so far
    /// (`|A[completed]|`), including frontier words a loaded snapshot has
    /// not yet merged into the live maps.
    pub fn a_size(&self) -> usize {
        self.seen.len()
            + self
                .deferred_frontier
                .as_ref()
                .map_or(0, DeferredFrontier::unique_words)
    }

    /// The words of level `B[cost]`, in discovery order, if that level
    /// has been expanded — the raw material for determinism audits
    /// across thread counts (gap levels under non-unit cost models are
    /// empty slices).
    pub fn level_words(&self, cost: u32) -> Option<&[W::Word]> {
        self.levels.get(cost as usize).map(Vec::as_slice)
    }

    /// The number of distinct reversible classes discovered so far —
    /// the cumulative `Σ |G[k]|`. When this reaches `(2^n − 1)!` (5040
    /// for three wires) every NOT-free reversible function has a known
    /// minimal cost.
    pub fn classes_found(&self) -> usize {
        self.classes.len()
    }

    /// The S-trace of a word: the 0-based domain indices the binary set
    /// maps to, packed one byte per binary pattern into the width's
    /// trace integer.
    ///
    /// Two words agree on every binary pattern iff their traces are
    /// equal, which turns the Section 4 level scan and the
    /// meet-in-the-middle join into single integer comparisons.
    pub(crate) fn trace_of(&self, word: &W::Word) -> W::Trace {
        let mut trace = W::Trace::ZERO;
        for (i, &idx) in self.binary0.iter().enumerate() {
            trace = trace.or_byte(i, word.at(idx as usize));
        }
        trace
    }

    /// The largest single-gate cost in the library (used to bound the
    /// forward side of a meet-in-the-middle split).
    pub(crate) fn max_gate_cost(&self) -> u32 {
        self.gate_costs.iter().copied().max().unwrap_or(1)
    }

    /// `true` once the reachable search space is fully enumerated.
    pub(crate) fn exhausted(&self) -> bool {
        self.pending.is_empty() && self.deferred_frontier.is_none()
    }

    /// Merges the deferred frontier of a snapshot-loaded engine into the
    /// live `seen`/`pending` maps. A no-op on natively-built engines.
    ///
    /// Expansion calls this automatically; long-lived hosts call it
    /// eagerly at startup so no query pays the (already checksummed)
    /// merge cost mid-flight.
    pub fn ensure_frontier(&mut self) {
        if let Some(frontier) = self.deferred_frontier.take() {
            frontier.merge_into::<W>(&mut self.seen, &mut self.pending);
        }
    }

    /// Expands FMCF levels until cost `cb` is fully processed.
    ///
    /// Levels already expanded are reused; the search is cumulative.
    pub fn expand_to_cost(&mut self, cb: u32) {
        while self.completed.is_none_or(|c| c < cb) {
            if !self.expand_next_level() {
                break; // search space exhausted
            }
        }
    }

    /// Expands exactly one FMCF cost level (the public single-step
    /// counterpart of [`Self::expand_to_cost`]). Returns `false` when
    /// the reachable space is exhausted and no level was expanded.
    ///
    /// Long-lived hosts use this to climb level by level, releasing
    /// their engine lock and re-checking target resolution between
    /// steps, so a shallow query never pays for a deep bound.
    pub fn expand_one_level(&mut self) -> bool {
        self.expand_next_level()
    }

    /// Expands exactly one cost level. Returns `false` when the reachable
    /// space is exhausted.
    ///
    /// On a multi-threaded engine, buckets past a small threshold run
    /// through the sharded rendezvous pipeline in [`crate::par`]; the
    /// results are bit-identical to this method's serial path (same
    /// levels, same bucket order, same lazy decrease-key outcomes).
    pub(crate) fn expand_next_level(&mut self) -> bool {
        mvq_fault::point!("expand.level");
        self.ensure_frontier();
        let Some((&cost, _)) = self.pending.first_key_value() else {
            return false;
        };
        // lint: allow(panic) first_key_value just proved the bucket key exists
        let raw_bucket = self.pending.remove(&cost).expect("bucket exists");
        self.probe.on(|p| p.level_started(cost));
        let parallel = self.threads > 1 && raw_bucket.len() >= par::PAR_MIN_BUCKET;
        // Lazy decrease-key: with non-uniform gate costs a word can be
        // re-admitted to a cheaper bucket after its first discovery; the
        // superseded copy stays behind in its original bucket and is
        // dropped here. Buckets are processed cost-ascending and all gate
        // costs are positive, so a word whose recorded cost still equals
        // this bucket's cost is final (Dijkstra).
        let bucket: Vec<W::Word> = if parallel {
            let seen = &self.seen;
            par::par_filter(&self.pool, raw_bucket, |w| {
                // lint: allow(panic) every pending word was inserted into seen on discovery
                seen.get(w).expect("pending word is seen").cost == cost
            })
        } else {
            raw_bucket
                .into_iter()
                // lint: allow(panic) every pending word was inserted into seen on discovery
                .filter(|w| self.seen.get(w).expect("pending word is seen").cost == cost)
                .collect()
        };
        // Defensive: levels complete in ascending order.
        debug_assert!(self.completed.map_or(cost == 0, |c| cost > c));

        // 1. Register reversible classes (pre_G[cost] − earlier G's: the
        //    subtraction is implicit in first-seen-wins), and collect the
        //    per-word S-traces for the level index. One fused pass: the
        //    parallel path computes (trace, restriction) pairs across
        //    threads, registration stays serial so the class-discovery
        //    and witness order match the bucket order.
        let mut g_new: Vec<W::Word> = Vec::new();
        let traces: Vec<W::Trace> = if parallel {
            let engine = &*self;
            let prepared: Vec<(W::Trace, Option<W::Word>)> =
                par::par_map(&engine.pool, &bucket, |_, w| {
                    (engine.trace_of(w), engine.restrict(w))
                });
            for (word, &(_, restriction)) in bucket.iter().zip(&prepared) {
                if let Some(restriction) = restriction {
                    self.register_class(cost, *word, restriction, &mut g_new);
                }
            }
            prepared.into_iter().map(|(trace, _)| trace).collect()
        } else {
            let mut traces = Vec::with_capacity(bucket.len());
            for word in &bucket {
                traces.push(self.trace_of(word));
                if let Some(restriction) = self.restrict(word) {
                    self.register_class(cost, *word, restriction, &mut g_new);
                }
            }
            traces
        };

        // 2. Expand reasonable products into later buckets. The `seen`
        //    reservation is sized from the frontier's measured growth
        //    factor so deep levels don't rehash their way up.
        let expected_new = par::growth_hint(
            bucket.len(),
            self.b_counts.last().copied().unwrap_or(0),
            self.gate_images.len(),
        );
        let mut nodes_added = 0u64;
        if parallel {
            let gate_images = &self.gate_images;
            let gate_banned = &self.gate_banned;
            let gate_costs = &self.gate_costs;
            let binary_len = self.binary0.len();
            let traces = &traces;
            let pushes = par::expand_bucket(
                &self.pool,
                &bucket,
                &mut self.seen,
                expected_new,
                &self.probe,
                |idx, word, emit| {
                    let image_mask = trace_mask::<W>(traces[idx], binary_len);
                    for gate_idx in 0..gate_images.len() {
                        if image_mask.intersects(&gate_banned[gate_idx]) {
                            continue; // not a reasonable product
                        }
                        emit(
                            word.map_through(&gate_images[gate_idx]),
                            cost + gate_costs[gate_idx],
                            gate_idx as u8,
                        );
                    }
                },
            );
            for (next_cost, words) in pushes {
                nodes_added += words.len() as u64;
                self.pending.entry(next_cost).or_default().extend(words);
            }
        } else {
            self.seen.reserve(expected_new);
            for (word, &trace) in bucket.iter().zip(&traces) {
                let image_mask = trace_mask::<W>(trace, self.binary0.len());
                for gate_idx in 0..self.gate_images.len() {
                    if image_mask.intersects(&self.gate_banned[gate_idx]) {
                        continue; // not a reasonable product
                    }
                    let next = word.map_through(&self.gate_images[gate_idx]);
                    let next_cost = cost + self.gate_costs[gate_idx];
                    // New word, or a cheaper path found while the word is
                    // still pending (the old copy goes stale).
                    if par::admit(self.seen.entry(next), next_cost, gate_idx as u8) {
                        nodes_added += 1;
                        self.pending.entry(next_cost).or_default().push(next);
                    }
                }
            }
        }

        // 3. Record the level and its statistics. With non-unit costs some
        //    levels are empty; fill the gap so indices equal costs.
        while self.levels.len() < cost as usize {
            self.levels.push(Vec::new());
            self.level_traces.push(Vec::new());
            self.trace_index.push(None);
            self.class_levels.push(Vec::new());
            self.b_counts.push(0);
            self.g_counts.push(0);
        }
        self.b_counts.push(bucket.len());
        self.g_counts.push(g_new.len());
        self.levels.push(bucket);
        self.level_traces.push(traces);
        self.trace_index.push(None);
        self.class_levels.push(g_new);
        self.completed = Some(cost);
        if self.probe.is_set() {
            // O(buckets), not O(words): Vec::len per pending bucket.
            let frontier: u64 = self.pending.values().map(|b| b.len() as u64).sum();
            self.probe
                .on(|p| p.level_finished(cost, nodes_added, frontier));
        }
        true
    }

    /// Folds one reversible word of the current level into the class
    /// table: first realization founds the class (and joins `g_new`),
    /// same-cost realizations extend its witness list.
    fn register_class(
        &mut self,
        cost: u32,
        word: W::Word,
        restriction: W::Word,
        g_new: &mut Vec<W::Word>,
    ) {
        match self.classes.get_mut(&restriction) {
            None => {
                self.classes.insert(
                    restriction,
                    GClass {
                        cost,
                        witnesses: vec![word],
                    },
                );
                g_new.push(restriction);
            }
            Some(class) if class.cost == cost => {
                class.witnesses.push(word);
            }
            Some(_) => {} // already realizable at lower cost
        }
    }

    /// Builds (once) the S-trace join index for level `f`.
    pub(crate) fn ensure_trace_index(&mut self, f: u32) {
        let f = f as usize;
        if self.trace_index[f].is_none() {
            let mut index: TraceIndex<W::Trace> =
                HashMap::with_capacity_and_hasher(self.level_traces[f].len(), Default::default());
            for (i, &trace) in self.level_traces[f].iter().enumerate() {
                index.entry(trace).or_default().push(i as u32);
            }
            self.trace_index[f] = Some(index);
        }
    }

    /// The S-trace join index for level `f` (built by
    /// [`Self::ensure_trace_index`]).
    pub(crate) fn trace_index_ref(&self, f: u32) -> &TraceIndex<W::Trace> {
        self.trace_index[f as usize]
            .as_ref()
            // lint: allow(panic) callers run ensure_trace_index for the level first (internal contract)
            .expect("ensure_trace_index was called for this level")
    }

    /// The paper's MCE (Minimum_Cost_Expressing) algorithm: synthesizes a
    /// minimal-cost implementation of the reversible function `target`
    /// (a permutation of `{1, …, 2^n}`), searching up to cost `cb`.
    ///
    /// Returns `None` if the target's minimal cost exceeds `cb`
    /// (the paper's `flag = 0` case) — including on a *warm* engine whose
    /// cached levels already extend past `cb`.
    ///
    /// # Panics
    ///
    /// Panics if `target.degree() != 2^n` for the library's wire count.
    pub fn synthesize(&mut self, target: &Perm, cb: u32) -> Option<Synthesis> {
        let (key, not_layer) = self.reduce_target(target);
        loop {
            if let Some(resolved) = self.lookup_class(&key, &not_layer, cb) {
                return resolved;
            }
            let done = self.completed.map_or(0, |c| c + 1);
            if done > cb {
                return None;
            }
            if !self.expand_next_level() {
                return None;
            }
        }
    }

    /// Read-only MCE against the cached levels: answers from the class
    /// table alone, never expanding a level.
    ///
    /// Returns [`CachedSynthesis::Resolved`] when the cache is
    /// authoritative for `(target, cb)` — a minimal circuit within the
    /// bound, or a definitive `None` (the class cost exceeds `cb`, the
    /// levels already cover `cb`, or the search space is exhausted) —
    /// and [`CachedSynthesis::NeedsExpansion`] when only deeper levels
    /// can decide. The resolved value is bit-identical to what
    /// [`Self::synthesize`] would return, which lets concurrent readers
    /// share one warm engine and funnel only cache misses to a writer.
    ///
    /// # Panics
    ///
    /// Panics if `target.degree() != 2^n` for the library's wire count.
    pub fn synthesize_cached(&self, target: &Perm, cb: u32) -> CachedSynthesis {
        let (key, not_layer) = self.reduce_target(target);
        if let Some(resolved) = self.lookup_class(&key, &not_layer, cb) {
            return CachedSynthesis::Resolved(resolved);
        }
        if self.completed.map_or(0, |c| c + 1) > cb || self.exhausted() {
            CachedSynthesis::Resolved(None)
        } else {
            CachedSynthesis::NeedsExpansion
        }
    }

    /// The class-table half of MCE: `Some(result)` when the cache decides
    /// the query (hit within the bound, or a class whose minimal cost
    /// exceeds `cb` — further expansion can never help), `None` when the
    /// class has not been discovered yet.
    fn lookup_class(
        &self,
        key: &W::Word,
        not_layer: &[Gate],
        cb: u32,
    ) -> Option<Option<Synthesis>> {
        let class = self.classes.get(key)?;
        debug_assert!(self.completed.is_some_and(|c| c >= class.cost));
        // The class cost is minimal by construction; on a warm engine it
        // may exceed the caller's bound, in which case no further
        // expansion can ever help.
        if class.cost > cb {
            return Some(None);
        }
        let n = self.library.domain().wires();
        let mut gates = not_layer.to_vec();
        gates.extend(self.reconstruct(&class.witnesses[0]));
        Some(Some(Synthesis {
            circuit: Circuit::new(n, gates),
            cost: class.cost,
            not_layer: not_layer.to_vec(),
            implementation_count: class.witnesses.len(),
        }))
    }

    /// Runs MCE with an explicit [`SynthesisStrategy`].
    pub fn synthesize_with(
        &mut self,
        strategy: SynthesisStrategy,
        target: &Perm,
        cb: u32,
    ) -> Option<Synthesis> {
        match strategy {
            SynthesisStrategy::Unidirectional => self.synthesize(target, cb),
            SynthesisStrategy::Bidirectional => self.synthesize_bidirectional(target, cb),
        }
    }

    /// Strips the Theorem 2 NOT layer from `target` and returns the
    /// remaining stabilizer part as a class key, plus the layer's gates.
    ///
    /// # Panics
    ///
    /// Panics if `target.degree() != 2^n` for the library's wire count.
    pub(crate) fn reduce_target(&self, target: &Perm) -> (W::Word, Vec<Gate>) {
        let n = self.library.domain().wires();
        let patterns = 1usize << n;
        assert_eq!(
            target.degree(),
            patterns,
            "target must permute the {patterns} binary patterns"
        );

        // Theorem 2: strip a NOT layer d[0] so that the remainder fixes
        // pattern 1 (all zeros). d[0] maps pattern 1 to target⁻¹(1)… i.e.
        // its bits are those of the pattern that target sends to 1.
        let bits = target.preimage(1) - 1;
        let not_layer: Vec<Gate> = (0..n)
            .filter(|w| bits & (1 << (n - 1 - w)) != 0)
            .map(Gate::not)
            .collect();
        let d0 = not_layer_perm(bits, n);
        let reduced = d0.left_div(target);
        debug_assert_eq!(reduced.image(1), 1);
        (W::Word::from_slice(reduced.as_images()), not_layer)
    }

    /// Returns every distinct minimal-cost implementation of `target`
    /// found by the level search (one circuit per distinct domain
    /// permutation), up to cost `cb`.
    ///
    /// The paper reports 2 such implementations for Peres and 4 for
    /// Toffoli.
    pub fn synthesize_all(&mut self, target: &Perm, cb: u32) -> Vec<Synthesis> {
        let Some(first) = self.synthesize(target, cb) else {
            return Vec::new();
        };
        let n = self.library.domain().wires();
        let (key, _) = self.reduce_target(target);
        let class = self.classes.get(&key).expect("synthesize found the class");
        let witnesses = class.witnesses.clone();
        witnesses
            .iter()
            .map(|w| {
                let mut gates = first.not_layer.clone();
                gates.extend(self.reconstruct(w));
                Synthesis {
                    circuit: Circuit::new(n, gates),
                    cost: first.cost,
                    not_layer: first.not_layer.clone(),
                    implementation_count: witnesses.len(),
                }
            })
            .collect()
    }

    /// Reconstructs the gate cascade that produced `word`, walking the
    /// `last_gate` chain back to the identity.
    pub(crate) fn reconstruct(&self, word: &W::Word) -> Vec<Gate> {
        let mut gates = Vec::new();
        let mut current = *word;
        loop {
            // lint: allow(panic) reconstruction walks predecessor links that were stored on insert
            let meta = self.seen.get(&current).expect("witness is in A");
            if meta.last_gate == u8::MAX {
                break;
            }
            let gate_idx = meta.last_gate as usize;
            gates.push(self.library.gates()[gate_idx].gate());
            // parent = current * gate⁻¹.
            current = current.map_through(&self.gate_inverse_images[gate_idx]);
        }
        gates.reverse();
        gates
    }

    /// The minimal quantum cost of `target`, if within `cb`.
    ///
    /// Like [`Self::synthesize`], a warm engine returns `None` whenever
    /// the minimal cost exceeds `cb`, regardless of prior expansion.
    pub fn minimal_cost(&mut self, target: &Perm, cb: u32) -> Option<u32> {
        self.synthesize(target, cb).map(|s| s.cost)
    }

    /// All reversible circuits of minimal cost exactly `k` — the paper's
    /// set `G[k]` — as `(binary permutation, witness circuit)` pairs.
    ///
    /// Expands levels up to `k` if necessary, then reads the per-level
    /// class index (no scan over other levels). Pairs are sorted by the
    /// binary permutation for determinism.
    pub fn reversible_circuits_at_cost(&mut self, k: u32) -> Vec<(Perm, Circuit)> {
        self.expand_to_cost(k);
        let n = self.library.domain().wires();
        let keys = match self.class_levels.get(k as usize) {
            Some(keys) => keys.clone(),
            None => return Vec::new(), // search space exhausted below k
        };
        let mut out: Vec<(Perm, Circuit)> = keys
            .iter()
            .map(|key| {
                let class = &self.classes[key];
                debug_assert_eq!(class.cost, k);
                let images: Vec<usize> = key.as_slice().iter().map(|&b| b as usize + 1).collect();
                let perm = Perm::from_images(&images).expect("valid restriction");
                let circuit = Circuit::new(n, self.reconstruct(&class.witnesses[0]));
                (perm, circuit)
            })
            .collect();
        out.sort_by(|(a, _), (b, _)| a.cmp(b));
        out
    }

    /// Synthesizes a circuit realizing an arbitrary (possibly
    /// *probabilistic*) specification: `images[i]` is the 1-based domain
    /// index that binary input pattern `i + 1` must map to. Mixed-valued
    /// targets are allowed — this is the Section 4 front-end used for
    /// quantum random generators and probabilistic machines.
    ///
    /// Returns the first (minimal-cost) matching cascade within cost `cb`,
    /// or `None`. [`Synthesis::implementation_count`] reports how many
    /// distinct cascades the minimal level contains for the images
    /// (mirroring the paper's Peres = 2 / Toffoli = 4 counts).
    ///
    /// Each level is scanned through its packed trace index — one integer
    /// comparison per member — instead of rescanning the whole `A` set.
    ///
    /// # Panics
    ///
    /// Panics if `images` does not have one entry per binary pattern or
    /// mentions an index outside the domain.
    pub fn synthesize_quaternary(&mut self, images: &[usize], cb: u32) -> Option<Synthesis> {
        let n = self.library.domain().wires();
        assert_eq!(
            images.len(),
            self.binary0.len(),
            "one target per binary pattern"
        );
        for &img in images {
            assert!(
                img >= 1 && img <= self.library.domain().len(),
                "target index {img} outside the domain"
            );
        }
        let target_trace = images
            .iter()
            .enumerate()
            .fold(W::Trace::ZERO, |acc, (i, &img)| {
                acc.or_byte(i, (img - 1) as u8)
            });
        for level in 0..=cb {
            self.expand_to_cost(level);
            if self.levels.len() <= level as usize {
                return None; // search space exhausted below `level`
            }
            let hits: Vec<u32> = self.level_traces[level as usize]
                .iter()
                .enumerate()
                .filter(|(_, &t)| t == target_trace)
                .map(|(i, _)| i as u32)
                .collect();
            if let Some(&first) = hits.first() {
                let word = self.levels[level as usize][first as usize];
                let gates = self.reconstruct(&word);
                return Some(Synthesis {
                    circuit: Circuit::new(n, gates),
                    cost: level,
                    not_layer: Vec::new(),
                    implementation_count: hits.len(),
                });
            }
        }
        None
    }

    /// Restriction of a word to the binary index set, if closed.
    fn restrict(&self, word: &W::Word) -> Option<W::Word> {
        // The stack buffer must cover every width's binary set; a wider
        // future width would silently truncate restrictions otherwise.
        const {
            assert!(
                W::Trace::SLOTS <= 16,
                "restrict buffer narrower than the trace width"
            );
        }
        let mut out = [0u8; 16];
        let k = self.binary0.len();
        for (slot, &idx) in out.iter_mut().zip(&self.binary0) {
            let rank = self.binary_rank[word.at(idx as usize) as usize];
            if rank == u8::MAX {
                return None;
            }
            *slot = rank;
        }
        Some(W::Word::from_slice(&out[..k]))
    }
}

/// Bitmask of the domain indices packed in an S-trace of `k` entries.
pub(crate) fn trace_mask<W: SearchWidth>(trace: W::Trace, k: usize) -> W::Mask {
    let mut mask = W::Mask::default();
    for i in 0..k {
        mask.set_bit(trace.byte(i) as usize);
    }
    mask
}

/// The permutation of `{1, …, 2^n}` realized by NOT gates on the wires
/// whose bit is set in `bits` (wire A = most significant).
pub(crate) fn not_layer_perm(bits: usize, n: usize) -> Perm {
    let images: Vec<usize> = (0..1usize << n).map(|p| (p ^ bits) + 1).collect();
    // lint: allow(panic) xor with a mask permutes truth-table rows, always a bijection
    Perm::from_images(&images).expect("xor is a bijection")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{known, SynthesisEngine, WideSynthesisEngine};

    #[test]
    fn level_0_is_identity_only() {
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(0);
        assert_eq!(e.g_counts(), &[1]);
        assert_eq!(e.b_counts(), &[1]);
        assert_eq!(e.a_size(), 19); // identity + 18 gates discovered
    }

    #[test]
    fn table_2_prefix() {
        // |G[k]| for k = 0..3: the verified counts (see
        // `census::EXPECTED_TABLE_2` for why k = 2, 3 differ from the
        // paper's printed 30 and 52).
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(3);
        assert_eq!(e.g_counts(), &[1, 6, 24, 51]);
    }

    #[test]
    fn g1_is_feynman_gates_only() {
        // "G[1] consists of the binary-input binary-output circuits which
        // are the combinations of 1 Feynman gate" — six of them.
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(1);
        assert_eq!(e.g_counts()[1], 6);
    }

    #[test]
    fn level_index_matches_counts() {
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(3);
        for k in 0..=3usize {
            assert_eq!(e.levels[k].len(), e.b_counts()[k], "level {k}");
            assert_eq!(e.level_traces[k].len(), e.b_counts()[k], "traces {k}");
            assert_eq!(e.class_levels[k].len(), e.g_counts()[k], "classes {k}");
        }
    }

    #[test]
    fn peres_synthesis_cost_4() {
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize(&known::peres_perm(), 5).expect("reachable");
        assert_eq!(syn.cost, 4);
        assert!(syn.not_layer.is_empty());
        assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
    }

    #[test]
    fn toffoli_synthesis_cost_5() {
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize(&known::toffoli_perm(), 6).expect("reachable");
        assert_eq!(syn.cost, 5);
        assert!(syn
            .circuit
            .verify_against_binary_perm(&known::toffoli_perm()));
    }

    #[test]
    fn feynman_costs_1() {
        let mut e = SynthesisEngine::unit_cost();
        let target: Perm = "(5,7)(6,8)".parse::<Perm>().unwrap().extended(8);
        let syn = e.synthesize(&target, 3).expect("one Feynman gate");
        assert_eq!(syn.cost, 1);
        assert_eq!(syn.circuit.gates().len(), 1);
    }

    #[test]
    fn identity_costs_0() {
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize(&Perm::identity(8), 2).expect("trivial");
        assert_eq!(syn.cost, 0);
        assert!(syn.circuit.gates().is_empty());
    }

    #[test]
    fn pure_not_target_costs_0() {
        // NOT(C): (1,2)(3,4)(5,6)(7,8) — coset layer only.
        let target: Perm = "(1,2)(3,4)(5,6)(7,8)".parse().unwrap();
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize(&target, 2).expect("not layer");
        assert_eq!(syn.cost, 0);
        assert_eq!(syn.not_layer, vec![Gate::not(2)]);
        assert!(syn.circuit.verify_against_binary_perm(&target));
    }

    #[test]
    fn cost_exceeding_bound_returns_none() {
        let mut e = SynthesisEngine::unit_cost();
        // Toffoli needs 5.
        assert!(e.synthesize(&known::toffoli_perm(), 4).is_none());
    }

    #[test]
    fn warm_engine_honors_cost_bound() {
        // Regression: once the levels were expanded past `cb`, the class
        // lookup used to return a circuit above the caller's bound.
        let mut e = SynthesisEngine::unit_cost();
        e.expand_to_cost(5);
        assert!(e.synthesize(&known::toffoli_perm(), 4).is_none());
        assert!(e.synthesize_all(&known::toffoli_perm(), 4).is_empty());
        assert_eq!(e.minimal_cost(&known::toffoli_perm(), 4), None);
        assert_eq!(e.minimal_cost(&known::toffoli_perm(), 0), None);
        // The bound admits the class once it covers the minimal cost.
        assert_eq!(e.minimal_cost(&known::toffoli_perm(), 5), Some(5));
    }

    #[test]
    fn warm_engine_agrees_with_cold_engine() {
        let mut warm = SynthesisEngine::unit_cost();
        warm.expand_to_cost(5);
        for cb in 0..=5u32 {
            let mut cold = SynthesisEngine::unit_cost();
            assert_eq!(
                warm.minimal_cost(&known::peres_perm(), cb),
                cold.minimal_cost(&known::peres_perm(), cb),
                "cb = {cb}"
            );
        }
    }

    #[test]
    fn quaternary_counts_minimal_implementations() {
        // The paper reports 2 implementations for Peres at cost 4.
        let mut e = SynthesisEngine::unit_cost();
        let images: Vec<usize> = (1..=8).map(|p| known::peres_perm().image(p)).collect();
        let syn = e.synthesize_quaternary(&images, 5).expect("reachable");
        assert_eq!(syn.cost, 4);
        assert_eq!(syn.implementation_count, 2);
    }

    #[test]
    fn quaternary_counts_toffoli_implementations() {
        // …and 4 for Toffoli at cost 5.
        let mut e = SynthesisEngine::unit_cost();
        let images: Vec<usize> = (1..=8).map(|p| known::toffoli_perm().image(p)).collect();
        let syn = e.synthesize_quaternary(&images, 6).expect("reachable");
        assert_eq!(syn.cost, 5);
        assert_eq!(syn.implementation_count, 4);
    }

    #[test]
    fn synthesize_all_returns_distinct_verified_circuits() {
        let mut e = SynthesisEngine::unit_cost();
        let all = e.synthesize_all(&known::peres_perm(), 5);
        assert!(!all.is_empty());
        for syn in &all {
            assert_eq!(syn.cost, 4);
            assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
        }
        // Distinct circuits.
        let mut circuits: Vec<String> = all.iter().map(|s| s.circuit.to_string()).collect();
        circuits.sort();
        circuits.dedup();
        assert_eq!(circuits.len(), all.len());
    }

    #[test]
    fn weighted_costs_change_levels() {
        // With Feynman cost 1 and V costs 2, Peres should cost
        // 1 (Feynman) + 3 × 2 (V gates) = 7.
        let lib = GateLibrary::standard(3);
        let mut e = SynthesisEngine::new(lib, CostModel::weighted(2, 2, 1));
        let syn = e.synthesize(&known::peres_perm(), 8).expect("reachable");
        assert_eq!(syn.cost, 7);
        assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
    }

    #[test]
    fn two_wire_engine_works() {
        // On 2 wires the only reversible circuits are Feynman products.
        let lib = GateLibrary::standard(2);
        let mut e = SynthesisEngine::new(lib, CostModel::unit());
        // CNOT (B ^= A): patterns (1,0)↔? pattern idx: 1=(00),2=(01),
        // 3=(10),4=(11); B^=A swaps 3,4.
        let target: Perm = "(3,4)".parse::<Perm>().unwrap().extended(4);
        let syn = e.synthesize(&target, 3).expect("single CNOT");
        assert_eq!(syn.cost, 1);
    }

    #[test]
    fn wide_width_reproduces_narrow_3_wire_levels() {
        // The widening refactor must not change any 3-wire result: the
        // wide engine (256-byte words, u128 traces, bitset masks) over
        // the standard 3-wire library is compared level by level.
        let mut narrow = SynthesisEngine::unit_cost();
        let mut wide = WideSynthesisEngine::new(GateLibrary::standard(3), CostModel::unit());
        narrow.expand_to_cost(4);
        wide.expand_to_cost(4);
        assert_eq!(narrow.g_counts(), wide.g_counts());
        assert_eq!(narrow.b_counts(), wide.b_counts());
        assert_eq!(narrow.a_size(), wide.a_size());
        for k in 0..=4u32 {
            let nw: Vec<&[u8]> = narrow
                .level_words(k)
                .unwrap()
                .iter()
                .map(|w| w.as_slice())
                .collect();
            let ww: Vec<&[u8]> = wide
                .level_words(k)
                .unwrap()
                .iter()
                .map(|w| w.as_slice())
                .collect();
            assert_eq!(nw, ww, "level {k}");
        }
        let a = narrow.synthesize(&known::toffoli_perm(), 5).unwrap();
        let b = wide.synthesize(&known::toffoli_perm(), 5).unwrap();
        assert_eq!(a.circuit.to_string(), b.circuit.to_string());
        assert_eq!(a.implementation_count, b.implementation_count);
    }

    #[test]
    fn four_wire_library_needs_the_wide_width() {
        let lib = GateLibrary::standard(4);
        let err = SynthesisEngine::try_new(lib.clone(), CostModel::unit()).unwrap_err();
        assert_eq!(
            err,
            EngineError::DomainTooLarge {
                patterns: 176,
                capacity: 64
            }
        );
        assert!(err.to_string().contains("176"), "{err}");
        // The wide width accepts it.
        let e = WideSynthesisEngine::try_new(lib, CostModel::unit()).unwrap();
        assert_eq!(e.library().gates().len(), 36);
    }

    #[test]
    fn strategy_parses_and_displays() {
        assert_eq!(
            "bidirectional".parse::<SynthesisStrategy>().unwrap(),
            SynthesisStrategy::Bidirectional
        );
        assert_eq!(
            "UNI".parse::<SynthesisStrategy>().unwrap(),
            SynthesisStrategy::Unidirectional
        );
        assert!("sideways".parse::<SynthesisStrategy>().is_err());
        assert_eq!(
            SynthesisStrategy::Bidirectional.to_string(),
            "bidirectional"
        );
        assert_eq!(
            SynthesisStrategy::default(),
            SynthesisStrategy::Unidirectional
        );
    }

    #[test]
    fn trace_mask_collects_packed_indices() {
        // Trace bytes 1, 3, 5 → mask bits 1, 3, 5.
        let trace: u64 = 1 | (3 << 8) | (5 << 16);
        assert_eq!(trace_mask::<Narrow>(trace, 3), 0b101010);
    }

    #[test]
    fn wide_trace_mask_reaches_high_indices() {
        use crate::width::{Mask256, Wide};
        // A trace byte of 170 (a 4-wire mixed-pattern index) must set a
        // bit past the u64 range.
        let trace: u128 = 170 | (3 << 8);
        let mask = trace_mask::<Wide>(trace, 2);
        assert_eq!(mask, Mask256::from_bits([170, 3]));
    }
}
