use std::error::Error;
use std::fmt;

use mvq_logic::{Pattern, PatternDomain};
use mvq_sim::{Distribution, StateVector};

use crate::{Circuit, SynthesisEngine};

/// A binary-input / quaternary-output specification — the Section 4
/// synthesis target for probabilistic circuits (controlled quantum random
/// number generators, probabilistic state machines).
///
/// For each binary input pattern (by bit code, `A` most significant) the
/// spec gives the required output [`Pattern`], which may contain the mixed
/// values `V0`/`V1`. After measurement such an output behaves as a random
/// binary vector with exactly known probabilities.
///
/// # Examples
///
/// ```
/// use mvq_core::{QuaternarySpec, SynthesisEngine};
/// use mvq_logic::{Pattern, Value};
///
/// // A controlled random bit on wire B: input A=0 keeps B=0; input A=1
/// // outputs B = V0 (measures 0/1 with probability ½ each).
/// let spec = QuaternarySpec::new(2, vec![
///     Pattern::from_bits(0b00, 2),
///     Pattern::from_bits(0b01, 2),
///     Pattern::new(vec![Value::One, Value::V0]),
///     Pattern::new(vec![Value::One, Value::V1]),
/// ])?;
/// let mut engine = SynthesisEngine::new(
///     mvq_logic::GateLibrary::standard(2),
///     mvq_core::CostModel::unit(),
/// );
/// let result = mvq_core::synthesize_spec(&mut engine, &spec, 3)
///     .expect("one controlled-V suffices");
/// assert_eq!(result.cost, 1);
/// # Ok::<(), mvq_core::SpecError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuaternarySpec {
    wires: usize,
    targets: Vec<Pattern>,
}

/// Error building a [`QuaternarySpec`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    message: String,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid specification: {}", self.message)
    }
}

impl Error for SpecError {}

impl QuaternarySpec {
    /// Builds a spec from one output pattern per binary input (input bit
    /// codes ascending).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError`] if the target count is not `2^wires`, a
    /// target has the wrong width, targets are not pairwise distinct
    /// (reversibility), the all-zeros input is not mapped to itself, or a
    /// target without any `1` differs from its input (such patterns are
    /// fixed by every gate and therefore unreachable).
    pub fn new(wires: usize, targets: Vec<Pattern>) -> Result<Self, SpecError> {
        let err = |m: String| Err(SpecError { message: m });
        if targets.len() != 1 << wires {
            return err(format!(
                "expected {} targets, got {}",
                1 << wires,
                targets.len()
            ));
        }
        for (bits, t) in targets.iter().enumerate() {
            if t.len() != wires {
                return err(format!("target for input {bits:b} has wrong width"));
            }
            if !t.contains_one() && t.to_bits() != Some(bits) {
                return err(format!(
                    "target {t} for input {bits:03b} contains no 1 and is not the input itself; \
                     such patterns are unreachable"
                ));
            }
        }
        let mut sorted: Vec<&Pattern> = targets.iter().collect();
        sorted.sort();
        if sorted.windows(2).any(|w| w[0] == w[1]) {
            return err("targets must be pairwise distinct (reversibility)".into());
        }
        Ok(Self { wires, targets })
    }

    /// The number of wires.
    pub fn wires(&self) -> usize {
        self.wires
    }

    /// The target pattern for binary input `bits`.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 2^wires`.
    pub fn target(&self, bits: usize) -> &Pattern {
        &self.targets[bits]
    }

    /// All targets, input bit code ascending.
    pub fn targets(&self) -> &[Pattern] {
        &self.targets
    }

    /// `true` iff every target is binary (the spec is an ordinary
    /// reversible function).
    pub fn is_deterministic(&self) -> bool {
        self.targets.iter().all(|t| t.is_binary())
    }

    /// The 1-based domain indices of the targets, or `None` if a target is
    /// outside `domain`.
    pub fn to_images(&self, domain: &PatternDomain) -> Option<Vec<usize>> {
        self.targets.iter().map(|t| domain.index(t)).collect()
    }

    /// The exact measurement distribution the spec demands for input
    /// `bits` — the product-state distribution of the target pattern.
    ///
    /// # Panics
    ///
    /// Panics if `bits >= 2^wires`.
    pub fn output_distribution(&self, bits: usize) -> Distribution {
        StateVector::from_pattern(&self.targets[bits]).distribution()
    }
}

/// A successful Section 4 synthesis: the circuit and its quantum cost.
#[derive(Debug, Clone)]
pub struct SpecSynthesis {
    /// The synthesized cascade.
    pub circuit: Circuit,
    /// Its quantum cost.
    pub cost: u32,
}

/// Synthesizes a minimal-cost circuit meeting a binary-input /
/// quaternary-output specification, searching up to cost `cb`.
///
/// Returns `None` if no circuit within the bound realizes the spec (or a
/// target lies outside the engine's domain).
pub fn synthesize_spec(
    engine: &mut SynthesisEngine,
    spec: &QuaternarySpec,
    cb: u32,
) -> Option<SpecSynthesis> {
    let images = spec.to_images(engine.library().domain())?;
    let synthesis = engine.synthesize_quaternary(&images, cb)?;
    Some(SpecSynthesis {
        circuit: synthesis.circuit,
        cost: synthesis.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CostModel;
    use mvq_logic::{GateLibrary, Value};

    fn controlled_rng_spec() -> QuaternarySpec {
        QuaternarySpec::new(
            2,
            vec![
                Pattern::from_bits(0b00, 2),
                Pattern::from_bits(0b01, 2),
                Pattern::new(vec![Value::One, Value::V0]),
                Pattern::new(vec![Value::One, Value::V1]),
            ],
        )
        .expect("valid spec")
    }

    #[test]
    fn controlled_rng_synthesizes_to_single_v() {
        let mut engine = SynthesisEngine::new(GateLibrary::standard(2), CostModel::unit());
        let result = synthesize_spec(&mut engine, &controlled_rng_spec(), 3).expect("reachable");
        assert_eq!(result.cost, 1);
        assert_eq!(result.circuit.gates().len(), 1);
    }

    #[test]
    fn synthesized_circuit_realizes_the_spec_on_states() {
        let spec = controlled_rng_spec();
        let mut engine = SynthesisEngine::new(GateLibrary::standard(2), CostModel::unit());
        let result = synthesize_spec(&mut engine, &spec, 3).expect("reachable");
        for bits in 0..4usize {
            let mut sv = StateVector::basis(2, bits);
            sv.apply_cascade(result.circuit.gates());
            let want = StateVector::from_pattern(spec.target(bits));
            assert_eq!(sv, want, "input {bits:02b}");
        }
    }

    #[test]
    fn deterministic_spec_detection() {
        assert!(!controlled_rng_spec().is_deterministic());
        let det = QuaternarySpec::new(1, vec![Pattern::from_bits(0, 1), Pattern::from_bits(1, 1)])
            .unwrap();
        assert!(det.is_deterministic());
    }

    #[test]
    fn output_distribution_of_mixed_target() {
        let spec = controlled_rng_spec();
        let d = spec.output_distribution(0b10);
        assert_eq!(d.prob_of(0b10).to_f64(), 0.5);
        assert_eq!(d.prob_of(0b11).to_f64(), 0.5);
        assert_eq!(d.prob_of(0b00).to_f64(), 0.0);
    }

    #[test]
    fn spec_validation_rejects_bad_inputs() {
        // Wrong count.
        assert!(QuaternarySpec::new(2, vec![Pattern::zeros(2)]).is_err());
        // Duplicate targets.
        assert!(
            QuaternarySpec::new(1, vec![Pattern::from_bits(0, 1), Pattern::from_bits(0, 1)])
                .is_err()
        );
        // Unreachable no-1 target.
        assert!(QuaternarySpec::new(
            1,
            vec![Pattern::new(vec![Value::V0]), Pattern::from_bits(1, 1),]
        )
        .is_err());
        // Wrong width.
        assert!(QuaternarySpec::new(1, vec![Pattern::zeros(2), Pattern::from_bits(1, 1)]).is_err());
    }

    #[test]
    fn unreachable_spec_returns_none() {
        // Demand B = V0 for *both* values of A with A preserved: the
        // all-zero input cannot move, so this is invalid at validation…
        // use instead a reachable-looking but over-tight bound.
        let mut engine = SynthesisEngine::new(GateLibrary::standard(2), CostModel::unit());
        let spec = controlled_rng_spec();
        assert!(synthesize_spec(&mut engine, &spec, 0).is_none());
    }

    #[test]
    fn spec_error_displays() {
        let e = QuaternarySpec::new(2, vec![Pattern::zeros(2)]).unwrap_err();
        assert!(e.to_string().contains("expected 4 targets"));
    }
}
