//! Persistent level-cache snapshots: versioned, checksummed binary
//! serialization of a warm [`SynthesisEngine`].
//!
//! `expand_to_cost` dominates every cold query, yet the state it builds —
//! the per-cost level tables (`levels`/`level_traces`), the class table
//! with its witnesses, and the Dijkstra frontier — is plain data. A
//! snapshot writes that state once so every later process cold-starts
//! warm: loading the paper's cost-5 levels takes milliseconds where
//! recomputing them takes ~100 ms, and the ratio grows geometrically
//! with depth.
//!
//! # File layout (version 2)
//!
//! ```text
//! magic "MVQSNAP\0" · version u32
//! header  (length-prefixed, FNV-1a checksummed)
//!   library identity (wires, domain/binary sizes, gate count,
//!   image-table fingerprint) · cost-model weights · completed level ·
//!   section table (lengths + checksums) · element counts ·
//!   packed widths (word capacity, trace slots)
//! core section     levels: words + S-traces + path gates, per cost;
//!                  classes: restriction + witnesses, nested in the
//!                  level that founded them (so class cost = level index
//!                  and the byte stream is deterministic)
//! frontier section pending Dijkstra buckets: (word, path gate) entries
//!                  in bucket order — everything resuming the search
//!                  needs, nothing a query does
//! ```
//!
//! All integers are little-endian; words are raw image tables (the
//! domain length is in the header, so no per-word framing) and S-traces
//! are the width's packed integer (8 bytes narrow, 16 wide). Every
//! section is independently FNV-1a-checksummed and fully verified at
//! load — a corrupt, truncated, or wrong-version file fails with a
//! typed [`SnapshotError`], never a silently-empty cache.
//!
//! # Versions and widths
//!
//! Version 2 records the engine's packed widths (word capacity and
//! trace slots) so a snapshot can only be loaded by an engine of the
//! same [`SearchWidth`](crate::SearchWidth) — a mismatch fails with the
//! typed [`SnapshotError::WidthMismatch`], never a misparse. Version 1
//! files (written before the 4-wire widening) carry no width fields and
//! are read as the narrow widths they were built with; this build
//! always writes version 2.
//!
//! # Lazy frontier
//!
//! Queries served from the cached levels (census reads, class lookups,
//! circuit reconstruction) never touch the pending frontier, which is
//! ~4× larger than the completed levels. Loading therefore materializes
//! the levels and classes eagerly but keeps the (already checksummed and
//! structurally validated) frontier section as raw bytes; the first
//! level expansion merges it via [`SynthesisEngine::ensure_frontier`].
//! Resumed expansion is bit-identical to a never-snapshotted engine:
//! bucket order, stale decrease-key copies, and path metadata all
//! round-trip exactly.

use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::Path;

use mvq_logic::GateLibrary;
use mvq_obs::ProbeHandle;

use crate::engine::{Meta, SearchEngine};
use crate::par::{self, ShardedSeen};
use crate::width::{MaskRepr, SearchWidth, TraceRepr, WordRepr};
use crate::word::fnv1a;
use crate::CostModel;

/// The snapshot format version this build writes (it reads versions 1
/// and 2; see the module docs).
pub const SNAPSHOT_VERSION: u32 = 2;

/// The oldest snapshot version this build still reads.
pub const SNAPSHOT_MIN_VERSION: u32 = 1;

const MAGIC: &[u8; 8] = b"MVQSNAP\0";

/// The identity sentinel in path metadata (no producing gate).
const NO_GATE: u8 = u8::MAX;

/// An error produced while writing or reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file operation failed.
    Io(io::Error),
    /// The file does not start with the snapshot magic.
    NotASnapshot,
    /// The file is a snapshot, but of a version this build cannot read.
    UnsupportedVersion(u32),
    /// The file is shorter than its own framing declares.
    Truncated {
        /// Bytes the framing declares.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A section's checksum does not match its contents.
    ChecksumMismatch(&'static str),
    /// The framing is intact but a section's contents are malformed.
    Corrupt(String),
    /// The snapshot was built over a different library or an engine this
    /// build cannot reconstruct.
    LibraryMismatch(String),
    /// The snapshot's packed widths differ from the loading engine's
    /// [`SearchWidth`](crate::SearchWidth) — e.g. a 4-wire (wide)
    /// snapshot offered to a narrow engine.
    WidthMismatch {
        /// Word capacity recorded in the snapshot.
        snapshot_word_capacity: usize,
        /// Trace slots recorded in the snapshot.
        snapshot_trace_slots: usize,
        /// The loading engine's word capacity.
        engine_word_capacity: usize,
        /// The loading engine's trace slots.
        engine_trace_slots: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(err) => write!(f, "snapshot I/O error: {err}"),
            Self::NotASnapshot => write!(f, "not a mvq snapshot (bad magic)"),
            Self::UnsupportedVersion(v) => write!(
                f,
                "unsupported snapshot version {v} (this build reads versions \
                 {SNAPSHOT_MIN_VERSION}\u{2013}{SNAPSHOT_VERSION})"
            ),
            Self::Truncated { expected, actual } => write!(
                f,
                "truncated snapshot: framing declares {expected} bytes, file has {actual}"
            ),
            Self::ChecksumMismatch(section) => {
                write!(f, "snapshot {section} section failed its checksum")
            }
            Self::Corrupt(detail) => write!(f, "corrupt snapshot: {detail}"),
            Self::LibraryMismatch(detail) => write!(f, "snapshot library mismatch: {detail}"),
            Self::WidthMismatch {
                snapshot_word_capacity,
                snapshot_trace_slots,
                engine_word_capacity,
                engine_trace_slots,
            } => write!(
                f,
                "snapshot width mismatch: file packs {snapshot_word_capacity}-pattern words \
                 and {snapshot_trace_slots}-slot traces, engine expects \
                 {engine_word_capacity}/{engine_trace_slots} (load it with the matching \
                 engine width)"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(err) => Some(err),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(err: io::Error) -> Self {
        Self::Io(err)
    }
}

impl SnapshotError {
    /// `true` for damage classes a last-good backup can repair: bad
    /// magic, unreadable version, truncation, checksum or structural
    /// corruption. Environment mismatches (width, library, permissions)
    /// are `false` — the backup was written by the same process and
    /// would fail the same way, so falling back would only mask a
    /// configuration error.
    pub fn is_corruption(&self) -> bool {
        matches!(
            self,
            Self::NotASnapshot
                | Self::UnsupportedVersion(_)
                | Self::Truncated { .. }
                | Self::ChecksumMismatch(_)
                | Self::Corrupt(_)
        )
    }
}

/// Which file a resilient load actually read — see
/// [`SearchEngine::load_snapshot_resilient`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotSource {
    /// The primary snapshot file was intact.
    Primary,
    /// The primary was missing or corrupt; the `.bak` sibling loaded.
    Backup {
        /// Why the primary was rejected (for the caller's diagnostic).
        primary_error: String,
    },
}

/// The last-good sibling kept beside every overwritten snapshot:
/// `path` with `.bak` appended (`warm.snap` → `warm.snap.bak`).
pub fn snapshot_backup_path(path: impl AsRef<Path>) -> std::path::PathBuf {
    let mut backup = path.as_ref().as_os_str().to_owned();
    backup.push(".bak");
    std::path::PathBuf::from(backup)
}

fn corrupt(detail: impl Into<String>) -> SnapshotError {
    SnapshotError::Corrupt(detail.into())
}

/// Cheap structural sniff of an existing snapshot file: magic, version
/// range, plausible header length, header checksum. Used to decide
/// whether an about-to-be-overwritten primary is worth keeping as the
/// `.bak` — a torn primary must never clobber a good backup.
fn sniff_snapshot(path: &Path) -> bool {
    let Ok(bytes) = std::fs::read(path) else {
        return false;
    };
    let prefix_len = MAGIC.len() + 8;
    if bytes.len() < prefix_len || &bytes[..MAGIC.len()] != MAGIC {
        return false;
    }
    let version = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return false;
    }
    let header_len =
        u32::from_le_bytes(bytes[MAGIC.len() + 4..prefix_len].try_into().unwrap()) as usize;
    let Some(body_start) = prefix_len
        .checked_add(header_len)
        .and_then(|n| n.checked_add(8))
    else {
        return false;
    };
    if bytes.len() < body_start {
        return false;
    }
    let header_bytes = &bytes[prefix_len..prefix_len + header_len];
    let stored = u64::from_le_bytes(
        bytes[prefix_len + header_len..body_start]
            .try_into()
            .unwrap(),
    );
    checksum64(header_bytes) == stored
}

/// Durably publish `bytes` at `path`: write a per-process-unique temp
/// sibling, fsync it, rotate any intact existing file to `.bak`, rename
/// the temp into place, and fsync the parent directory so the rename
/// itself survives a crash. A failure at any step leaves the previous
/// primary (or its `.bak`) loadable.
fn durable_write(path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
    use std::io::Write;

    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);

    let write_result = (|| -> io::Result<()> {
        mvq_fault::point!(
            "snapshot.write",
            return Err(io::Error::other("injected snapshot.write fault"))
        );
        // lint: allow(persistence) the durable-write helper itself: fsynced and renamed below
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        mvq_fault::point!(
            "snapshot.rename",
            return Err(io::Error::other("injected snapshot.rename fault"))
        );
        // Keep the last-good state reachable across the overwrite — but
        // only rotate a primary that still sniffs as a snapshot, so a
        // torn primary never replaces a good `.bak`.
        if sniff_snapshot(path) {
            std::fs::rename(path, snapshot_backup_path(path))?;
        }
        std::fs::rename(&tmp, path)?;
        // An fsync of the parent directory persists the rename itself;
        // without it a crash can forget the new directory entry.
        #[cfg(unix)]
        if let Some(parent) = path.parent() {
            let dir = if parent.as_os_str().is_empty() {
                Path::new(".")
            } else {
                parent
            };
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    })();
    if write_result.is_err() {
        // Best-effort cleanup; the error we report is the write failure.
        let _ = std::fs::remove_file(&tmp);
    }
    write_result.map_err(SnapshotError::Io)
}

/// Section checksum: FNV-1a over 8-byte little-endian chunks (plus the
/// length-tagged tail), ~8× faster than the byte-wise variant on the
/// multi-megabyte sections — snapshot loading is the hot path the format
/// exists for.
fn checksum64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut state = FNV_OFFSET;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // lint: allow(panic) chunks_exact(8) yields exactly 8 bytes
        state ^= u64::from_le_bytes(chunk.try_into().unwrap());
        state = state.wrapping_mul(FNV_PRIME);
    }
    let mut tail = [0u8; 8];
    tail[..chunks.remainder().len()].copy_from_slice(chunks.remainder());
    state ^= u64::from_le_bytes(tail);
    state = state.wrapping_mul(FNV_PRIME);
    state ^= bytes.len() as u64;
    state.wrapping_mul(FNV_PRIME)
}

/// `true` iff every byte of `block` is a valid image under `limit`
/// (a contiguous max-scan the optimizer vectorizes, unlike a per-word
/// early-exit loop).
fn all_bytes_below(block: &[u8], limit: usize) -> bool {
    let max = block.iter().fold(0u8, |m, &b| m.max(b));
    (max as usize) < limit || block.is_empty()
}

// ---------------------------------------------------------------------
// Byte codec
// ---------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| corrupt("section ends mid-record"))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        // lint: allow(panic) take(2) returned exactly 2 bytes
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        // lint: allow(panic) take(4) returned exactly 4 bytes
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        // lint: allow(panic) take(8) returned exactly 8 bytes
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn finish(&self, section: &str) -> Result<(), SnapshotError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(corrupt(format!(
                "{section} section has {} trailing bytes",
                self.bytes.len() - self.pos
            )))
        }
    }
}

/// A `usize` from a `u64` field, guarding 32-bit hosts.
fn usize_of(v: u64, what: &str) -> Result<usize, SnapshotError> {
    usize::try_from(v).map_err(|_| corrupt(format!("{what} count {v} overflows this host")))
}

// ---------------------------------------------------------------------
// Header
// ---------------------------------------------------------------------

struct Header {
    wires: u8,
    domain_len: u8,
    binary_len: u8,
    gate_count: u16,
    fingerprint: u64,
    weights: (u32, u32, u32),
    completed: Option<u32>,
    a_size: u64,
    level_count: u32,
    class_count: u64,
    frontier_buckets: u32,
    frontier_unique: u64,
    core_len: u64,
    core_checksum: u64,
    frontier_len: u64,
    frontier_checksum: u64,
    /// Packed word capacity of the writing engine (v2; 64 implied in v1).
    word_capacity: u16,
    /// Packed trace slots of the writing engine (v2; 8 implied in v1).
    trace_slots: u8,
}

impl Header {
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(96);
        out.push(self.wires);
        out.push(self.domain_len);
        out.push(self.binary_len);
        put_u16(&mut out, self.gate_count);
        put_u64(&mut out, self.fingerprint);
        put_u32(&mut out, self.weights.0);
        put_u32(&mut out, self.weights.1);
        put_u32(&mut out, self.weights.2);
        out.push(self.completed.is_some() as u8);
        put_u32(&mut out, self.completed.unwrap_or(0));
        put_u64(&mut out, self.a_size);
        put_u32(&mut out, self.level_count);
        put_u64(&mut out, self.class_count);
        put_u32(&mut out, self.frontier_buckets);
        put_u64(&mut out, self.frontier_unique);
        put_u64(&mut out, self.core_len);
        put_u64(&mut out, self.core_checksum);
        put_u64(&mut out, self.frontier_len);
        put_u64(&mut out, self.frontier_checksum);
        put_u16(&mut out, self.word_capacity);
        out.push(self.trace_slots);
        out
    }

    fn parse(bytes: &[u8], version: u32) -> Result<Self, SnapshotError> {
        let mut r = Reader::new(bytes);
        let header = Self {
            wires: r.u8()?,
            domain_len: r.u8()?,
            binary_len: r.u8()?,
            gate_count: r.u16()?,
            fingerprint: r.u64()?,
            weights: (r.u32()?, r.u32()?, r.u32()?),
            completed: {
                let present = r.u8()? != 0;
                let value = r.u32()?;
                present.then_some(value)
            },
            a_size: r.u64()?,
            level_count: r.u32()?,
            class_count: r.u64()?,
            frontier_buckets: r.u32()?,
            frontier_unique: r.u64()?,
            core_len: r.u64()?,
            core_checksum: r.u64()?,
            frontier_len: r.u64()?,
            frontier_checksum: r.u64()?,
            // Version 1 predates the width fields: it was only ever
            // written by the narrow engine.
            word_capacity: if version >= 2 { r.u16()? } else { 64 },
            trace_slots: if version >= 2 { r.u8()? } else { 8 },
        };
        r.finish("header")?;
        Ok(header)
    }
}

/// A stable fingerprint of everything the engine derives from a library:
/// image tables, inverse tables, banned masks, and the binary set.
/// (For the narrow width the bytes — and therefore the fingerprints of
/// existing v1 snapshots — are unchanged.)
fn library_fingerprint<M: MaskRepr>(engine_like: &LibraryTables<'_, M>) -> u64 {
    let mut bytes = Vec::new();
    for images in engine_like.gate_images {
        bytes.extend_from_slice(images);
    }
    for images in engine_like.gate_inverse_images {
        bytes.extend_from_slice(images);
    }
    for banned in engine_like.gate_banned {
        banned.write_le(&mut bytes);
    }
    bytes.extend_from_slice(engine_like.binary0);
    fnv1a(&bytes)
}

/// Entry layout of one frontier bucket after its `(cost, count)` prefix:
/// all words contiguous, then all path gates contiguous (so validation
/// and merge scan whole blocks instead of interleaved records).
fn bucket_blocks<'a>(
    r: &mut Reader<'a>,
    domain_len: usize,
) -> Result<(u32, &'a [u8], &'a [u8]), SnapshotError> {
    let cost = r.u32()?;
    let entries = usize_of(r.u64()?, "frontier bucket entry")?;
    let words = r.take(
        entries
            .checked_mul(domain_len)
            .ok_or_else(|| corrupt("frontier bucket size overflows"))?,
    )?;
    let gates = r.take(entries)?;
    Ok((cost, words, gates))
}

struct LibraryTables<'a, M: MaskRepr> {
    gate_images: &'a [Vec<u8>],
    gate_inverse_images: &'a [Vec<u8>],
    gate_banned: &'a [M],
    binary0: &'a [u8],
}

impl<W: SearchWidth> SearchEngine<W> {
    fn library_tables(&self) -> LibraryTables<'_, W::Mask> {
        LibraryTables {
            gate_images: &self.gate_images,
            gate_inverse_images: &self.gate_inverse_images,
            gate_banned: &self.gate_banned,
            binary0: &self.binary0,
        }
    }
}

// ---------------------------------------------------------------------
// Deferred frontier
// ---------------------------------------------------------------------

/// The frontier section of a loaded snapshot, checksummed and
/// structurally validated at load but merged into the live maps only
/// when expansion first needs it (queries served from the cached levels
/// skip the cost entirely).
#[derive(Clone)]
pub(crate) struct DeferredFrontier {
    bytes: Vec<u8>,
    buckets: u32,
    unique: usize,
    domain_len: usize,
}

impl fmt::Debug for DeferredFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeferredFrontier")
            .field("buckets", &self.buckets)
            .field("unique", &self.unique)
            .field("bytes", &self.bytes.len())
            .finish()
    }
}

impl DeferredFrontier {
    /// Distinct words the frontier will add to `seen` when merged.
    pub(crate) fn unique_words(&self) -> usize {
        self.unique
    }

    /// Walks the section once, checking every structural invariant the
    /// merge relies on, so the merge itself cannot fail.
    fn validate(bytes: &[u8], header: &Header, gate_count: usize) -> Result<(), SnapshotError> {
        let mut r = Reader::new(bytes);
        let domain_len = header.domain_len as usize;
        let mut previous_cost: Option<u32> = None;
        for _ in 0..header.frontier_buckets {
            let (cost, words, gates) = bucket_blocks(&mut r, domain_len)?;
            if previous_cost.is_some_and(|p| p >= cost) {
                return Err(corrupt("frontier buckets out of cost order"));
            }
            if let Some(completed) = header.completed {
                if cost <= completed {
                    return Err(corrupt(format!(
                        "frontier bucket at cost {cost} inside the completed range"
                    )));
                }
            }
            previous_cost = Some(cost);
            if !all_bytes_below(words, domain_len) {
                return Err(corrupt("frontier word image outside the domain"));
            }
            if !gates
                .iter()
                .all(|&g| g == NO_GATE || (g as usize) < gate_count)
            {
                return Err(corrupt("frontier path gate out of range"));
            }
        }
        r.finish("frontier")
    }

    /// Replays the buckets (cost-ascending) into the live maps. The
    /// first occurrence of a word is its cheapest — that copy carries
    /// the path metadata; later copies are the stale bucket entries the
    /// lazy decrease-key rule leaves behind, kept in the bucket lists so
    /// resumed expansion is bit-identical to a never-snapshotted engine.
    pub(crate) fn merge_into<W: SearchWidth>(
        self,
        seen: &mut ShardedSeen<W::Word, Meta>,
        pending: &mut BTreeMap<u32, Vec<W::Word>>,
    ) {
        seen.reserve(self.unique);
        let mut r = Reader::new(&self.bytes);
        for _ in 0..self.buckets {
            let (cost, words, gates) =
                bucket_blocks(&mut r, self.domain_len).expect("validated at load");
            let mut bucket = Vec::with_capacity(gates.len());
            for (word, &gate) in words.chunks_exact(self.domain_len).zip(gates) {
                let word = W::Word::from_slice(word);
                if let std::collections::hash_map::Entry::Vacant(slot) = seen.entry(word) {
                    slot.insert(Meta {
                        cost,
                        last_gate: gate,
                    });
                }
                bucket.push(word);
            }
            pending.insert(cost, bucket);
        }
    }
}

// ---------------------------------------------------------------------
// Save
// ---------------------------------------------------------------------

impl<W: SearchWidth> SearchEngine<W> {
    /// Serializes the engine's warm state to `path` durably: a
    /// per-process-unique temp sibling is written and fsynced, any
    /// intact existing snapshot is rotated to `.bak`, the temp is
    /// renamed into place, and the parent directory is fsynced so the
    /// rename survives a crash. A failure mid-save leaves the previous
    /// state loadable (via the primary or its `.bak`).
    ///
    /// Takes `&mut self` because an engine that was itself loaded from a
    /// snapshot must materialize its deferred frontier first.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::LibraryMismatch`] when the engine was built over
    /// a non-standard library (snapshots reconstruct the library from
    /// its wire count), or [`SnapshotError::Io`] on write failure.
    pub fn save_snapshot(&mut self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let path = path.as_ref();
        let bytes = self.snapshot_to_bytes()?;
        durable_write(path, &bytes)
    }

    /// [`Self::save_snapshot`] into an in-memory buffer.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::LibraryMismatch`] when the engine was built over
    /// a non-standard library.
    pub fn snapshot_to_bytes(&mut self) -> Result<Vec<u8>, SnapshotError> {
        self.ensure_frontier();
        let wires = self.library.domain().wires();
        let fingerprint = library_fingerprint(&self.library_tables());
        let standard = GateLibrary::standard(wires);
        let standard_engine = SearchEngine::<W>::try_with_threads(standard, self.model, 1)
            .map_err(|err| SnapshotError::LibraryMismatch(err.to_string()))?;
        if library_fingerprint(&standard_engine.library_tables()) != fingerprint {
            return Err(SnapshotError::LibraryMismatch(format!(
                "engine library differs from GateLibrary::standard({wires}); \
                 only standard libraries can be snapshotted"
            )));
        }
        let domain_len = self.library.domain().len();
        let binary_len = self.binary0.len();

        // Core section: levels (words, traces, path gates) with their
        // classes nested in the level that founded them.
        self.probe.on(|p| p.snapshot_section_started("core_save"));
        let mut core = Vec::new();
        let mut class_total = 0u64;
        for k in 0..self.levels.len() {
            let words = &self.levels[k];
            put_u32(&mut core, words.len() as u32);
            for word in words {
                core.extend_from_slice(word.as_slice());
            }
            for &trace in &self.level_traces[k] {
                trace.write_le(&mut core);
            }
            for word in words {
                // lint: allow(panic) level words come from seen's own level lists
                core.push(self.seen.get(word).expect("level word is seen").last_gate);
            }
            let class_keys = &self.class_levels[k];
            put_u32(&mut core, class_keys.len() as u32);
            class_total += class_keys.len() as u64;
            for key in class_keys {
                let class = &self.classes[key];
                debug_assert_eq!(class.cost, k as u32);
                core.extend_from_slice(key.as_slice());
                put_u32(&mut core, class.witnesses.len() as u32);
                for witness in &class.witnesses {
                    core.extend_from_slice(witness.as_slice());
                }
            }
        }

        self.probe
            .on(|p| p.snapshot_section_finished("core_save", core.len() as u64));

        // Frontier section: the pending Dijkstra buckets, in order
        // (words then gates per bucket — see `bucket_blocks`).
        self.probe
            .on(|p| p.snapshot_section_started("frontier_save"));
        let mut frontier = Vec::new();
        for (&cost, bucket) in &self.pending {
            put_u32(&mut frontier, cost);
            put_u64(&mut frontier, bucket.len() as u64);
            for word in bucket {
                frontier.extend_from_slice(word.as_slice());
            }
            for word in bucket {
                // lint: allow(panic) pending words were inserted into seen on discovery
                frontier.push(self.seen.get(word).expect("pending word is seen").last_gate);
            }
        }

        self.probe
            .on(|p| p.snapshot_section_finished("frontier_save", frontier.len() as u64));

        let completed_words: usize = self.b_counts.iter().sum();
        let weights = self.model.weights();
        let header = Header {
            wires: wires as u8,
            domain_len: domain_len as u8,
            binary_len: binary_len as u8,
            gate_count: self.gate_images.len() as u16,
            fingerprint,
            weights,
            completed: self.completed,
            a_size: self.seen.len() as u64,
            level_count: self.levels.len() as u32,
            class_count: class_total,
            frontier_buckets: self.pending.len() as u32,
            frontier_unique: (self.seen.len() - completed_words) as u64,
            core_len: core.len() as u64,
            core_checksum: checksum64(&core),
            frontier_len: frontier.len() as u64,
            frontier_checksum: checksum64(&frontier),
            word_capacity: W::Word::CAPACITY as u16,
            trace_slots: W::Trace::SLOTS as u8,
        };
        let header_bytes = header.to_bytes();

        let mut out = Vec::with_capacity(24 + header_bytes.len() + core.len() + frontier.len());
        out.extend_from_slice(MAGIC);
        put_u32(&mut out, SNAPSHOT_VERSION);
        put_u32(&mut out, header_bytes.len() as u32);
        out.extend_from_slice(&header_bytes);
        put_u64(&mut out, checksum64(&header_bytes));
        out.extend_from_slice(&core);
        out.extend_from_slice(&frontier);
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Load
// ---------------------------------------------------------------------

impl<W: SearchWidth> SearchEngine<W> {
    /// Loads a snapshot, resolving the thread count like
    /// [`SearchEngine::new`] (`MVQ_THREADS`, then the available
    /// parallelism).
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: I/O failure, bad magic, unsupported
    /// version, truncation, checksum mismatch, structural corruption, a
    /// width mismatch against this engine's [`SearchWidth`], or a
    /// library this build cannot reconstruct.
    pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::load_snapshot_with_threads(path, par::resolve_threads(None))
    }

    /// [`Self::load_snapshot`] with an explicit degree of parallelism.
    ///
    /// # Errors
    ///
    /// See [`Self::load_snapshot`].
    pub fn load_snapshot_with_threads(
        path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<Self, SnapshotError> {
        mvq_fault::point!(
            "snapshot.load",
            return Err(corrupt("injected snapshot.load fault"))
        );
        let bytes = std::fs::read(path)?;
        Self::load_snapshot_from_bytes(&bytes, threads)
    }

    /// [`Self::load_snapshot_with_threads`] with last-good fallback:
    /// when the primary at `path` is missing or fails with a
    /// corruption-class error ([`SnapshotError::is_corruption`]), the
    /// `.bak` sibling written by [`Self::save_snapshot`] is tried before
    /// giving up. The returned [`SnapshotSource`] says which file
    /// actually loaded so callers can log the degradation.
    ///
    /// # Errors
    ///
    /// The primary's error when no fallback applies (environment
    /// mismatches are never retried against the backup) or when the
    /// backup also fails to load.
    pub fn load_snapshot_resilient(
        path: impl AsRef<Path>,
        threads: usize,
    ) -> Result<(Self, SnapshotSource), SnapshotError> {
        let path = path.as_ref();
        let primary_error = match Self::load_snapshot_with_threads(path, threads) {
            Ok(engine) => return Ok((engine, SnapshotSource::Primary)),
            Err(err) => err,
        };
        let missing =
            matches!(&primary_error, SnapshotError::Io(io) if io.kind() == io::ErrorKind::NotFound);
        if !primary_error.is_corruption() && !missing {
            return Err(primary_error);
        }
        match Self::load_snapshot_with_threads(snapshot_backup_path(path), threads) {
            Ok(engine) => Ok((
                engine,
                SnapshotSource::Backup {
                    primary_error: primary_error.to_string(),
                },
            )),
            Err(_) => Err(primary_error),
        }
    }

    /// Rebuilds an engine from in-memory snapshot bytes.
    ///
    /// # Errors
    ///
    /// See [`Self::load_snapshot`].
    pub fn load_snapshot_from_bytes(bytes: &[u8], threads: usize) -> Result<Self, SnapshotError> {
        Self::load_snapshot_from_bytes_with_probe(bytes, threads, ProbeHandle::none())
    }

    /// [`Self::load_snapshot_from_bytes`] with an observability probe
    /// installed up front, so the load itself reports its section
    /// timings (the probe stays installed on the returned engine).
    ///
    /// # Errors
    ///
    /// See [`Self::load_snapshot`].
    pub fn load_snapshot_from_bytes_with_probe(
        bytes: &[u8],
        threads: usize,
        probe: ProbeHandle,
    ) -> Result<Self, SnapshotError> {
        // Framing: magic, version, header length.
        if bytes.len() < MAGIC.len() + 8 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::NotASnapshot);
        }
        let mut r = Reader::new(&bytes[MAGIC.len()..]);
        // lint: allow(panic) reader holds at least the 8 header-prefix bytes checked above
        let version = r.u32().expect("length checked");
        if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        // lint: allow(panic) reader holds at least the 8 header-prefix bytes checked above
        let header_len = r.u32().expect("length checked") as usize;
        let header_start = MAGIC.len() + 8;
        let body_start = header_start
            .checked_add(header_len)
            .and_then(|n| n.checked_add(8))
            .ok_or(SnapshotError::NotASnapshot)?;
        if bytes.len() < body_start {
            return Err(SnapshotError::Truncated {
                expected: body_start as u64,
                actual: bytes.len() as u64,
            });
        }
        let header_bytes = &bytes[header_start..header_start + header_len];
        let stored_header_checksum = u64::from_le_bytes(
            bytes[header_start + header_len..body_start]
                .try_into()
                // lint: allow(panic) the slice is exactly the 8 checksum bytes bounds-checked above
                .unwrap(),
        );
        if checksum64(header_bytes) != stored_header_checksum {
            return Err(SnapshotError::ChecksumMismatch("header"));
        }
        let header = Header::parse(header_bytes, version)?;
        if header.word_capacity as usize != W::Word::CAPACITY
            || header.trace_slots as usize != W::Trace::SLOTS
        {
            return Err(SnapshotError::WidthMismatch {
                snapshot_word_capacity: header.word_capacity as usize,
                snapshot_trace_slots: header.trace_slots as usize,
                engine_word_capacity: W::Word::CAPACITY,
                engine_trace_slots: W::Trace::SLOTS,
            });
        }

        // Section framing and checksums.
        let core_len = usize_of(header.core_len, "core byte")?;
        let frontier_len = usize_of(header.frontier_len, "frontier byte")?;
        let expected_total = (body_start as u64)
            .checked_add(header.core_len)
            .and_then(|n| n.checked_add(header.frontier_len))
            .ok_or_else(|| corrupt("section lengths overflow"))?;
        if (bytes.len() as u64) < expected_total {
            return Err(SnapshotError::Truncated {
                expected: expected_total,
                actual: bytes.len() as u64,
            });
        }
        if bytes.len() as u64 > expected_total {
            return Err(corrupt(format!(
                "{} trailing bytes after the frontier section",
                bytes.len() as u64 - expected_total
            )));
        }
        let core = &bytes[body_start..body_start + core_len];
        let frontier = &bytes[body_start + core_len..][..frontier_len];
        if checksum64(core) != header.core_checksum {
            return Err(SnapshotError::ChecksumMismatch("core"));
        }
        if checksum64(frontier) != header.frontier_checksum {
            return Err(SnapshotError::ChecksumMismatch("frontier"));
        }

        // Library + model reconstruction.
        if !(2..=4).contains(&header.wires) {
            return Err(SnapshotError::LibraryMismatch(format!(
                "snapshot built over {} wires; standard libraries cover 2–4",
                header.wires
            )));
        }
        let (v, vd, f) = header.weights;
        if v == 0 || vd == 0 || f == 0 {
            return Err(corrupt("cost-model weights must be positive"));
        }
        let model = CostModel::weighted(v, vd, f);
        let library = GateLibrary::standard(header.wires as usize);
        let threads = threads.max(1);
        let mut engine = SearchEngine::<W>::try_with_threads(library, model, threads)
            .map_err(|err| SnapshotError::LibraryMismatch(err.to_string()))?;
        let tables = engine.library_tables();
        if engine.gate_images.len() != header.gate_count as usize
            || engine.library.domain().len() != header.domain_len as usize
            || engine.binary0.len() != header.binary_len as usize
            || library_fingerprint(&tables) != header.fingerprint
        {
            return Err(SnapshotError::LibraryMismatch(format!(
                "snapshot fingerprint does not match GateLibrary::standard({})",
                header.wires
            )));
        }
        engine.probe = probe;
        let domain_len = header.domain_len as usize;
        let binary_len = header.binary_len as usize;
        let gate_count = engine.gate_images.len();

        // Core section → levels, traces, path metadata, classes.
        let completed_words = usize_of(
            header
                .a_size
                .checked_sub(header.frontier_unique)
                .ok_or_else(|| corrupt("frontier word count exceeds |A|"))?,
            "completed word",
        )?;
        engine.seen = ShardedSeen::for_threads(threads);
        engine.seen.reserve(completed_words);
        engine.pending = BTreeMap::new();
        engine.levels = Vec::with_capacity(header.level_count as usize);
        engine.level_traces = Vec::with_capacity(header.level_count as usize);
        engine.trace_index = Vec::with_capacity(header.level_count as usize);
        engine.class_levels = Vec::with_capacity(header.level_count as usize);
        engine.g_counts = Vec::with_capacity(header.level_count as usize);
        engine.b_counts = Vec::with_capacity(header.level_count as usize);
        engine.probe.on(|p| p.snapshot_section_started("core_load"));
        let mut r = Reader::new(core);
        let mut class_total = 0u64;
        let read_word = |r: &mut Reader<'_>, len: usize| -> Result<W::Word, SnapshotError> {
            let bytes = r.take(len)?;
            if bytes.iter().any(|&b| b as usize >= domain_len) {
                return Err(corrupt("word image outside the domain"));
            }
            Ok(W::Word::from_slice(bytes))
        };
        for k in 0..header.level_count {
            let count = r.u32()? as usize;
            let word_block = r.take(
                count
                    .checked_mul(domain_len)
                    .ok_or_else(|| corrupt("level size overflows"))?,
            )?;
            if !all_bytes_below(word_block, domain_len) {
                return Err(corrupt("level word image outside the domain"));
            }
            let words: Vec<W::Word> = word_block
                .chunks_exact(domain_len)
                .map(W::Word::from_slice)
                .collect();
            let mut traces = Vec::with_capacity(count);
            for _ in 0..count {
                traces.push(W::Trace::read_le(r.take(W::Trace::BYTES)?));
            }
            for word in &words {
                let gate = r.u8()?;
                if gate != NO_GATE && gate as usize >= gate_count {
                    return Err(corrupt(format!("level path gate {gate} out of range")));
                }
                engine.seen.insert(
                    *word,
                    Meta {
                        cost: k,
                        last_gate: gate,
                    },
                );
            }
            let class_count = r.u32()? as usize;
            class_total += class_count as u64;
            let mut class_keys = Vec::with_capacity(class_count);
            for _ in 0..class_count {
                let key = read_word(&mut r, binary_len)?;
                let witness_count = r.u32()? as usize;
                if witness_count == 0 {
                    return Err(corrupt("class without witnesses"));
                }
                let mut witnesses = Vec::with_capacity(witness_count);
                for _ in 0..witness_count {
                    witnesses.push(read_word(&mut r, domain_len)?);
                }
                if engine
                    .classes
                    .insert(key, crate::engine::GClass { cost: k, witnesses })
                    .is_some()
                {
                    return Err(corrupt("class founded twice"));
                }
                class_keys.push(key);
            }
            engine.g_counts.push(class_count);
            engine.b_counts.push(count);
            engine.levels.push(words);
            engine.level_traces.push(traces);
            engine.trace_index.push(None);
            engine.class_levels.push(class_keys);
        }
        r.finish("core")?;
        if class_total != header.class_count {
            return Err(corrupt(format!(
                "header declares {} classes, core section holds {class_total}",
                header.class_count
            )));
        }
        if engine.seen.len() != completed_words {
            return Err(corrupt(format!(
                "level tables hold {} distinct words, header accounts for {completed_words}",
                engine.seen.len()
            )));
        }
        match (header.completed, header.level_count) {
            (None, 0) => {}
            (Some(c), n) if u64::from(n) == u64::from(c) + 1 => {}
            _ => return Err(corrupt("completed level disagrees with the level count")),
        }
        engine.completed = header.completed;
        engine
            .probe
            .on(|p| p.snapshot_section_finished("core_load", core.len() as u64));

        // Frontier section: validate now, merge on first expansion.
        engine
            .probe
            .on(|p| p.snapshot_section_started("frontier_load"));
        DeferredFrontier::validate(frontier, &header, gate_count)?;
        engine.deferred_frontier = (header.frontier_buckets > 0).then(|| DeferredFrontier {
            bytes: frontier.to_vec(),
            buckets: header.frontier_buckets,
            unique: usize_of(header.frontier_unique, "frontier word").unwrap_or(0),
            domain_len,
        });
        engine
            .probe
            .on(|p| p.snapshot_section_finished("frontier_load", frontier.len() as u64));
        Ok(engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{known, SynthesisEngine, WideSynthesisEngine};

    fn warm(depth: u32) -> SynthesisEngine {
        let mut e = SynthesisEngine::unit_cost_with_threads(1);
        e.expand_to_cost(depth);
        e
    }

    #[test]
    fn roundtrip_preserves_levels_and_classes() {
        let mut original = warm(4);
        let bytes = original.snapshot_to_bytes().unwrap();
        let loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        assert_eq!(original.g_counts(), loaded.g_counts());
        assert_eq!(original.b_counts(), loaded.b_counts());
        assert_eq!(original.a_size(), loaded.a_size());
        assert_eq!(original.classes_found(), loaded.classes_found());
        for k in 0..=4 {
            assert_eq!(original.level_words(k), loaded.level_words(k), "level {k}");
        }
    }

    #[test]
    fn loaded_engine_answers_queries_identically() {
        let mut original = warm(5);
        let bytes = original.snapshot_to_bytes().unwrap();
        let mut loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        let want = original.synthesize(&known::toffoli_perm(), 6).unwrap();
        let got = loaded.synthesize(&known::toffoli_perm(), 6).unwrap();
        assert_eq!(want.cost, got.cost);
        assert_eq!(want.implementation_count, got.implementation_count);
        assert_eq!(want.circuit.to_string(), got.circuit.to_string());
        // Warm bound semantics survive the round-trip.
        assert!(loaded.synthesize(&known::toffoli_perm(), 4).is_none());
    }

    #[test]
    fn resumed_expansion_is_bit_identical() {
        let mut reference = warm(5);
        let mut snapshotted = warm(3);
        let bytes = snapshotted.snapshot_to_bytes().unwrap();
        let mut resumed = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        resumed.expand_to_cost(5);
        assert_eq!(reference.g_counts(), resumed.g_counts());
        assert_eq!(reference.b_counts(), resumed.b_counts());
        assert_eq!(reference.a_size(), resumed.a_size());
        for k in 0..=5 {
            assert_eq!(
                reference.level_words(k),
                resumed.level_words(k),
                "level {k}"
            );
        }
        let want = reference.synthesize(&known::toffoli_perm(), 6).unwrap();
        let got = resumed.synthesize(&known::toffoli_perm(), 6).unwrap();
        assert_eq!(want.circuit.to_string(), got.circuit.to_string());
    }

    #[test]
    fn weighted_model_roundtrips() {
        let mut original = SynthesisEngine::with_threads(
            GateLibrary::standard(3),
            CostModel::weighted(1, 2, 3),
            1,
        );
        original.expand_to_cost(5);
        let bytes = original.snapshot_to_bytes().unwrap();
        let loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        assert_eq!(loaded.cost_model().weights(), (1, 2, 3));
        assert_eq!(original.g_counts(), loaded.g_counts());
        assert_eq!(original.b_counts(), loaded.b_counts());
    }

    #[test]
    fn unexpanded_engine_roundtrips() {
        let mut fresh = SynthesisEngine::unit_cost_with_threads(1);
        let bytes = fresh.snapshot_to_bytes().unwrap();
        let mut loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        assert_eq!(loaded.a_size(), 1); // the identity, still pending
        assert_eq!(loaded.completed_cost(), None);
        loaded.expand_to_cost(2);
        let mut reference = SynthesisEngine::unit_cost_with_threads(1);
        reference.expand_to_cost(2);
        assert_eq!(reference.g_counts(), loaded.g_counts());
        assert_eq!(reference.a_size(), loaded.a_size());
    }

    #[test]
    fn bad_magic_is_not_a_snapshot() {
        let err = SynthesisEngine::load_snapshot_from_bytes(b"definitely not", 1).unwrap_err();
        assert!(matches!(err, SnapshotError::NotASnapshot), "{err}");
        let err = SynthesisEngine::load_snapshot_from_bytes(b"", 1).unwrap_err();
        assert!(matches!(err, SnapshotError::NotASnapshot), "{err}");
    }

    #[test]
    fn wrong_version_is_reported() {
        let mut bytes = warm(1).snapshot_to_bytes().unwrap();
        bytes[MAGIC.len()..MAGIC.len() + 4].copy_from_slice(&99u32.to_le_bytes());
        let err = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap_err();
        assert!(
            matches!(err, SnapshotError::UnsupportedVersion(99)),
            "{err}"
        );
    }

    #[test]
    fn truncation_is_reported() {
        let bytes = warm(2).snapshot_to_bytes().unwrap();
        for cut in [bytes.len() / 2, bytes.len() - 1, 20] {
            let err = SynthesisEngine::load_snapshot_from_bytes(&bytes[..cut], 1).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn flipped_bytes_fail_the_checksum() {
        let bytes = warm(2).snapshot_to_bytes().unwrap();
        // One flip in every region: header, core, frontier (the end).
        for offset in [30, bytes.len() / 2, bytes.len() - 2] {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x40;
            let err = SynthesisEngine::load_snapshot_from_bytes(&corrupted, 1).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::ChecksumMismatch(_) | SnapshotError::Corrupt(_)
                ),
                "offset {offset}: {err}"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = warm(1).snapshot_to_bytes().unwrap();
        bytes.extend_from_slice(b"junk");
        let err = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)), "{err}");
    }

    #[test]
    fn two_wire_snapshot_roundtrips() {
        let mut original =
            SynthesisEngine::with_threads(GateLibrary::standard(2), CostModel::unit(), 1);
        original.expand_to_cost(3);
        let bytes = original.snapshot_to_bytes().unwrap();
        let mut loaded = SynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        let target: mvq_perm::Perm = "(3,4)".parse::<mvq_perm::Perm>().unwrap().extended(4);
        assert_eq!(loaded.minimal_cost(&target, 3), Some(1));
    }

    #[test]
    fn wide_engine_snapshot_roundtrips() {
        let mut original =
            WideSynthesisEngine::with_threads(GateLibrary::standard(4), CostModel::unit(), 1);
        original.expand_to_cost(2);
        let bytes = original.snapshot_to_bytes().unwrap();
        let mut loaded = WideSynthesisEngine::load_snapshot_from_bytes(&bytes, 1).unwrap();
        assert_eq!(original.g_counts(), loaded.g_counts());
        assert_eq!(original.b_counts(), loaded.b_counts());
        assert_eq!(original.a_size(), loaded.a_size());
        // Resumed expansion matches a never-snapshotted engine.
        let mut reference =
            WideSynthesisEngine::with_threads(GateLibrary::standard(4), CostModel::unit(), 1);
        reference.expand_to_cost(3);
        loaded.expand_to_cost(3);
        assert_eq!(reference.g_counts(), loaded.g_counts());
        assert_eq!(reference.a_size(), loaded.a_size());
    }

    #[test]
    fn width_mismatch_is_a_typed_error() {
        // A wide snapshot offered to the narrow engine (and vice versa)
        // fails with WidthMismatch, not a misparse.
        let mut wide =
            WideSynthesisEngine::with_threads(GateLibrary::standard(4), CostModel::unit(), 1);
        wide.expand_to_cost(1);
        let wide_bytes = wide.snapshot_to_bytes().unwrap();
        let err = SynthesisEngine::load_snapshot_from_bytes(&wide_bytes, 1).unwrap_err();
        assert!(
            matches!(
                err,
                SnapshotError::WidthMismatch {
                    snapshot_word_capacity: 256,
                    snapshot_trace_slots: 16,
                    engine_word_capacity: 64,
                    engine_trace_slots: 8,
                }
            ),
            "{err}"
        );

        let narrow_bytes = warm(2).snapshot_to_bytes().unwrap();
        let err = WideSynthesisEngine::load_snapshot_from_bytes(&narrow_bytes, 1).unwrap_err();
        assert!(matches!(err, SnapshotError::WidthMismatch { .. }), "{err}");
    }

    #[test]
    fn version_1_files_still_load_as_narrow() {
        // This build only writes v2, so lock the documented v1 contract
        // with a synthesized v1 byte stream: strip the 3 width bytes
        // from a narrow v2 header and patch version/framing/checksum.
        let mut original = warm(3);
        let v2 = original.snapshot_to_bytes().unwrap();
        let header_len = u32::from_le_bytes(v2[12..16].try_into().unwrap()) as usize;
        let header_start = 16;
        let v1_header = &v2[header_start..header_start + header_len - 3];
        let mut v1 = Vec::new();
        v1.extend_from_slice(MAGIC);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&((header_len - 3) as u32).to_le_bytes());
        v1.extend_from_slice(v1_header);
        v1.extend_from_slice(&checksum64(v1_header).to_le_bytes());
        v1.extend_from_slice(&v2[header_start + header_len + 8..]);

        let loaded = SynthesisEngine::load_snapshot_from_bytes(&v1, 1).unwrap();
        assert_eq!(original.g_counts(), loaded.g_counts());
        assert_eq!(original.b_counts(), loaded.b_counts());
        assert_eq!(original.a_size(), loaded.a_size());

        // The v1 widths are implicitly narrow: the wide engine refuses.
        let err = WideSynthesisEngine::load_snapshot_from_bytes(&v1, 1).unwrap_err();
        assert!(matches!(err, SnapshotError::WidthMismatch { .. }), "{err}");
    }

    #[test]
    fn version_2_is_written() {
        let bytes = warm(1).snapshot_to_bytes().unwrap();
        let version = u32::from_le_bytes(bytes[MAGIC.len()..MAGIC.len() + 4].try_into().unwrap());
        assert_eq!(version, SNAPSHOT_VERSION);
        assert_eq!(version, 2);
    }

    #[test]
    fn save_and_load_via_path() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("mvq_snapshot_test_{}.snap", std::process::id()));
        let mut original = warm(3);
        original.save_snapshot(&path).unwrap();
        let loaded = SynthesisEngine::load_snapshot(&path).unwrap();
        assert_eq!(original.g_counts(), loaded.g_counts());
        std::fs::remove_file(&path).ok();
    }
}
