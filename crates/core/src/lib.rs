//! Exact minimal-cost synthesis of 3-qubit quantum circuits — the primary
//! contribution of the reproduced paper.
//!
//! The pipeline:
//!
//! 1. [`mvq_logic`] turns each elementary quantum gate (controlled-V,
//!    controlled-V⁺, Feynman) into a permutation of the 38-pattern
//!    quaternary domain, with banned sets encoding the "controls must be
//!    binary" constraint.
//! 2. [`SynthesisEngine`] runs the paper's **FMCF** algorithm
//!    (Finding_Minimum_Cost_Circuits): a breadth-first closure over
//!    *reasonable products* that discovers, level by level, the sets
//!    `G[k]` of all reversible circuits of minimal quantum cost `k`
//!    — reproducing **Table 2**.
//! 3. [`SynthesisEngine::synthesize`] implements **MCE**
//!    (Minimum_Cost_Expressing): given any target reversible function it
//!    strips a NOT-gate coset layer (Theorem 2) and factors the remainder
//!    into a minimal gate cascade — reproducing the Peres (Figures 4, 8)
//!    and Toffoli (Figure 9) syntheses.
//! 4. [`universal`] analyses the structure of `G[4]`: the 24 control-gate
//!    circuits, their universality, and the g1–g4 representatives
//!    (Figures 4–7).
//!
//! # Examples
//!
//! ```
//! use mvq_core::{known, SynthesisEngine};
//!
//! let mut engine = SynthesisEngine::unit_cost();
//! let result = engine
//!     .synthesize(&known::peres_perm(), 6)
//!     .expect("peres is reachable at cost 4");
//! assert_eq!(result.cost, 4);
//! assert!(result.circuit.verify_against_binary_perm(&known::peres_perm()));
//! ```

// `deny`, not `forbid`: the one sanctioned exception is the worker
// pool's scoped-task lifetime erasure in `par` (see the SAFETY comment
// there); everything else stays safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod census;
mod circuit;
mod cost;
mod engine;
pub mod known;
mod mitm;
mod par;
mod snapshot;
mod spec;
mod spectrum;
pub mod universal;
mod width;
mod word;

pub use census::{Census, CensusRow, EXPECTED_TABLE_2, PAPER_TABLE_2};
pub use circuit::{Circuit, ParseCircuitError};
pub use cost::{CostModel, ParseCostModelError};
pub use engine::{CachedSynthesis, EngineError, SearchEngine, Synthesis, SynthesisStrategy};
pub use mitm::CachedBidirectional;
pub use mvq_obs::{Probe, ProbeHandle};
pub use par::resolve_threads;
pub use snapshot::{
    snapshot_backup_path, SnapshotError, SnapshotSource, SNAPSHOT_MIN_VERSION, SNAPSHOT_VERSION,
};
pub use spec::{synthesize_spec, QuaternarySpec, SpecError, SpecSynthesis};
pub use spectrum::CostSpectrum;
pub use width::{Mask256, MaskRepr, Narrow, SearchWidth, ShardKey, TraceRepr, Wide, WordRepr};
pub use word::{FnvBuildHasher, FnvHasher, Packed, PackedWord, PackedWord256};

/// The narrow-width engine: the paper's 2- and 3-wire setting
/// (`[u8; 64]` words, `u64` S-traces and banned masks).
pub type SynthesisEngine = SearchEngine<Narrow>;

/// The wide-width engine for 4-wire libraries (`[u8; 256]` words,
/// `u128` S-traces, 256-bit banned masks).
pub type WideSynthesisEngine = SearchEngine<Wide>;
