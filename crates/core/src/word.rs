//! Packed fixed-width words for the FMCF level search.
//!
//! The search explores millions of circuit-permutations; representing each
//! as a `Box<[u8]>` costs one heap allocation (plus a pointer chase on
//! every hash/compare) per discovered element. [`PackedWord`] stores the
//! 0-based image table inline in a fixed `[u8; 64]` — sized to the
//! 64-index ceiling the library's `u64` banned masks already impose — so
//! words are `Copy`, hash without indirection, and pack contiguously in
//! the per-cost level vectors.

use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Index;

/// A compact circuit-permutation: a 0-based image table over at most
/// [`PackedWord::CAPACITY`] domain indices, stored inline.
///
/// Unused tail bytes are always zero, so derived equality and ordering
/// agree with slice semantics for words of equal length (the engine only
/// ever mixes words over one fixed domain).
///
/// # Examples
///
/// ```
/// use mvq_core::PackedWord;
///
/// let id = PackedWord::identity(38);
/// assert_eq!(id.len(), 38);
/// assert_eq!(id[37], 37);
/// let w = id.map_through(id.as_slice());
/// assert_eq!(w, id);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PackedWord {
    data: [u8; Self::CAPACITY],
    len: u8,
}

impl PackedWord {
    /// Maximum domain size a word can cover (matches the `u64` banned-mask
    /// limit of the gate library).
    pub const CAPACITY: usize = 64;

    /// The identity word on `len` indices.
    ///
    /// # Panics
    ///
    /// Panics if `len > PackedWord::CAPACITY`.
    pub fn identity(len: usize) -> Self {
        assert!(
            len <= Self::CAPACITY,
            "word length {len} exceeds the packed capacity of {}",
            Self::CAPACITY
        );
        let mut data = [0u8; Self::CAPACITY];
        for (i, slot) in data.iter_mut().take(len).enumerate() {
            *slot = i as u8;
        }
        Self {
            data,
            len: len as u8,
        }
    }

    /// Packs a 0-based image table.
    ///
    /// # Panics
    ///
    /// Panics if `images` is longer than [`PackedWord::CAPACITY`].
    pub fn from_slice(images: &[u8]) -> Self {
        assert!(
            images.len() <= Self::CAPACITY,
            "word length {} exceeds the packed capacity of {}",
            images.len(),
            Self::CAPACITY
        );
        let mut data = [0u8; Self::CAPACITY];
        data[..images.len()].copy_from_slice(images);
        Self {
            data,
            len: images.len() as u8,
        }
    }

    /// The number of domain indices the word covers.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// The active image table.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[..self.len as usize]
    }

    /// Post-composes through `table`: `out[i] = table[self[i]]` — the word
    /// for "this cascade, then the gate whose image table is `table`".
    ///
    /// # Panics
    ///
    /// Panics (in debug) if an image falls outside `table`.
    pub fn map_through(&self, table: &[u8]) -> Self {
        let mut data = [0u8; Self::CAPACITY];
        for (slot, &mid) in data.iter_mut().zip(self.as_slice()) {
            *slot = table[mid as usize];
        }
        Self {
            data,
            len: self.len,
        }
    }

    /// Iterates over the active images.
    pub fn iter(&self) -> std::slice::Iter<'_, u8> {
        self.as_slice().iter()
    }

    /// The word's FNV-1a hash, identical to hashing it through
    /// [`FnvHasher`] — used by the parallel engine to route words to
    /// `seen`-map shards without a hasher round-trip.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::hash::{BuildHasher, Hash, Hasher};
    /// use mvq_core::{FnvBuildHasher, PackedWord};
    ///
    /// let word = PackedWord::identity(38);
    /// let mut hasher = FnvBuildHasher::default().build_hasher();
    /// word.hash(&mut hasher);
    /// assert_eq!(word.fnv_hash(), hasher.finish());
    /// ```
    pub fn fnv_hash(&self) -> u64 {
        let mut state = fnv1a(self.as_slice());
        state ^= u64::from(self.len);
        state.wrapping_mul(FNV_PRIME)
    }
}

/// FNV-1a over a byte slice (the standalone form of [`FnvHasher`]).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state = FNV_OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

impl Index<usize> for PackedWord {
    type Output = u8;

    fn index(&self, index: usize) -> &u8 {
        &self.as_slice()[index]
    }
}

impl Hash for PackedWord {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // One write over the active prefix; the length disambiguates
        // prefix-equal words of different degrees.
        state.write(self.as_slice());
        state.write_u8(self.len);
    }
}

impl fmt::Debug for PackedWord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedWord({:?})", self.as_slice())
    }
}

impl<'a> IntoIterator for &'a PackedWord {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// FNV-1a, specialized for the short fixed-width keys of the level search
/// (packed words and `u64` traces). The default SipHash is DoS-resistant
/// but measurably slower on the engine's hot maps, whose keys are
/// program-generated and need no such resistance.
#[derive(Debug, Clone)]
pub struct FnvHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.state = state;
    }

    fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    fn write_u8(&mut self, value: u8) {
        self.write(&[value]);
    }
}

/// `BuildHasher` plumbing for [`FnvHasher`]-keyed maps.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;

    #[test]
    fn identity_is_identity() {
        let w = PackedWord::identity(38);
        assert_eq!(w.len(), 38);
        for i in 0..38 {
            assert_eq!(w[i], i as u8);
        }
    }

    #[test]
    fn from_slice_roundtrips() {
        let images = [3u8, 1, 0, 2];
        let w = PackedWord::from_slice(&images);
        assert_eq!(w.as_slice(), &images);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn map_through_composes() {
        // w = (0 1 2) cycle as table, composed with itself.
        let w = PackedWord::from_slice(&[1, 2, 0]);
        let ww = w.map_through(w.as_slice());
        assert_eq!(ww.as_slice(), &[2, 0, 1]);
        let www = ww.map_through(w.as_slice());
        assert_eq!(www, PackedWord::identity(3));
    }

    #[test]
    fn equality_ignores_capacity_tail() {
        let a = PackedWord::from_slice(&[1, 0]);
        let b = PackedWord::from_slice(&[1, 0]);
        assert_eq!(a, b);
        let c = PackedWord::from_slice(&[1, 0, 2]);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_agrees_with_equality() {
        let hash = |w: &PackedWord| {
            let mut h = DefaultHasher::new();
            w.hash(&mut h);
            h.finish()
        };
        let a = PackedWord::from_slice(&[2, 0, 1]);
        let b = PackedWord::from_slice(&[2, 0, 1]);
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn works_as_fnv_map_key() {
        let mut map: HashMap<PackedWord, u32, FnvBuildHasher> = HashMap::default();
        map.insert(PackedWord::identity(8), 7);
        map.insert(PackedWord::from_slice(&[1, 0]), 9);
        assert_eq!(map.get(&PackedWord::identity(8)), Some(&7));
        assert_eq!(map.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds the packed capacity")]
    fn oversized_word_panics() {
        let images = vec![0u8; PackedWord::CAPACITY + 1];
        let _ = PackedWord::from_slice(&images);
    }

    #[test]
    fn fnv_hash_matches_hasher_path() {
        use std::hash::BuildHasher;
        for word in [
            PackedWord::identity(38),
            PackedWord::from_slice(&[3, 1, 0, 2]),
            PackedWord::from_slice(&[]),
        ] {
            assert_eq!(
                word.fnv_hash(),
                FnvBuildHasher::default().hash_one(word),
                "{word:?}"
            );
        }
    }

    #[test]
    fn fnv_distinguishes_write_lengths() {
        let mut a = FnvHasher::default();
        a.write(&[0, 0]);
        let mut b = FnvHasher::default();
        b.write(&[0]);
        assert_ne!(a.finish(), b.finish());
    }
}
