//! Packed fixed-width words for the FMCF level search.
//!
//! The search explores millions of circuit-permutations; representing
//! each as a `Box<[u8]>` costs one heap allocation (plus a pointer chase
//! on every hash/compare) per discovered element. [`Packed`] stores the
//! 0-based image table inline in a fixed `[u8; CAP]`, so words are
//! `Copy`, hash without indirection, and pack contiguously in the
//! per-cost level vectors. The capacity is a const parameter so each
//! [search width](crate::SearchWidth) pays only for the bytes its
//! domain can need: [`PackedWord`] (`CAP = 64`) covers every 2- and
//! 3-wire library, [`PackedWord256`] (`CAP = 256`) covers the 176-index
//! 4-wire permutable domain.

use std::fmt;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::ops::Index;

/// A compact circuit-permutation: a 0-based image table over at most
/// `CAP` domain indices, stored inline.
///
/// Unused tail bytes are always zero, so derived equality and ordering
/// agree with slice semantics for words of equal length (the engine only
/// ever mixes words over one fixed domain).
///
/// # Examples
///
/// ```
/// use mvq_core::PackedWord;
///
/// let id = PackedWord::identity(38);
/// assert_eq!(id.len(), 38);
/// assert_eq!(id[37], 37);
/// let w = id.map_through(id.as_slice());
/// assert_eq!(w, id);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Packed<const CAP: usize> {
    data: [u8; CAP],
    len: u16,
}

/// The narrow packed word: 64 domain indices, matching the `u64` banned
/// masks of 2- and 3-wire libraries.
pub type PackedWord = Packed<64>;

/// The wide packed word: 256 domain indices, covering the 4-wire
/// permutable domain (176 indices) with headroom to the permutation
/// substrate's 255-point ceiling.
pub type PackedWord256 = Packed<256>;

impl<const CAP: usize> Packed<CAP> {
    /// Maximum domain size a word can cover.
    pub const CAPACITY: usize = CAP;

    /// The identity word on `len` indices.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds the packed capacity `CAP`.
    pub fn identity(len: usize) -> Self {
        assert!(
            len <= CAP,
            "word length {len} exceeds the packed capacity of {CAP}"
        );
        let mut data = [0u8; CAP];
        for (i, slot) in data.iter_mut().take(len).enumerate() {
            *slot = i as u8;
        }
        Self {
            data,
            len: len as u16,
        }
    }

    /// Packs a 0-based image table.
    ///
    /// # Panics
    ///
    /// Panics if `images` is longer than the packed capacity `CAP`.
    pub fn from_slice(images: &[u8]) -> Self {
        assert!(
            images.len() <= CAP,
            "word length {} exceeds the packed capacity of {CAP}",
            images.len(),
        );
        let mut data = [0u8; CAP];
        data[..images.len()].copy_from_slice(images);
        Self {
            data,
            len: images.len() as u16,
        }
    }

    /// The number of domain indices the word covers.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// The active image table.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[..self.len as usize]
    }

    /// Post-composes through `table`: `out[i] = table[self[i]]` — the word
    /// for "this cascade, then the gate whose image table is `table`".
    ///
    /// # Panics
    ///
    /// Panics (in debug) if an image falls outside `table`.
    pub fn map_through(&self, table: &[u8]) -> Self {
        let mut data = [0u8; CAP];
        for (slot, &mid) in data.iter_mut().zip(self.as_slice()) {
            *slot = table[mid as usize];
        }
        Self {
            data,
            len: self.len,
        }
    }

    /// Iterates over the active images.
    pub fn iter(&self) -> std::slice::Iter<'_, u8> {
        self.as_slice().iter()
    }

    /// The word's FNV-1a hash, identical to hashing it through
    /// [`FnvHasher`] — used by the parallel engine to route words to
    /// `seen`-map shards without a hasher round-trip.
    ///
    /// # Examples
    ///
    /// ```
    /// use std::hash::{BuildHasher, Hash, Hasher};
    /// use mvq_core::{FnvBuildHasher, PackedWord};
    ///
    /// let word = PackedWord::identity(38);
    /// let mut hasher = FnvBuildHasher::default().build_hasher();
    /// word.hash(&mut hasher);
    /// assert_eq!(word.fnv_hash(), hasher.finish());
    /// ```
    pub fn fnv_hash(&self) -> u64 {
        let mut state = fnv1a(self.as_slice());
        for byte in self.len.to_le_bytes() {
            state ^= u64::from(byte);
            state = state.wrapping_mul(FNV_PRIME);
        }
        state
    }
}

/// FNV-1a over a byte slice (the standalone form of [`FnvHasher`]).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut state = FNV_OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

impl<const CAP: usize> Index<usize> for Packed<CAP> {
    type Output = u8;

    fn index(&self, index: usize) -> &u8 {
        &self.as_slice()[index]
    }
}

impl<const CAP: usize> Hash for Packed<CAP> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // One write over the active prefix; the length disambiguates
        // prefix-equal words of different degrees.
        state.write(self.as_slice());
        state.write_u16(self.len);
    }
}

impl<const CAP: usize> fmt::Debug for Packed<CAP> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PackedWord<{CAP}>({:?})", self.as_slice())
    }
}

impl<'a, const CAP: usize> IntoIterator for &'a Packed<CAP> {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// FNV-1a, specialized for the short fixed-width keys of the level search
/// (packed words and `u64`/`u128` traces). The default SipHash is
/// DoS-resistant but measurably slower on the engine's hot maps, whose
/// keys are program-generated and need no such resistance.
#[derive(Debug, Clone)]
pub struct FnvHasher {
    state: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for FnvHasher {
    fn default() -> Self {
        Self { state: FNV_OFFSET }
    }
}

impl Hasher for FnvHasher {
    fn finish(&self) -> u64 {
        self.state
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut state = self.state;
        for &b in bytes {
            state ^= u64::from(b);
            state = state.wrapping_mul(FNV_PRIME);
        }
        self.state = state;
    }

    fn write_u128(&mut self, value: u128) {
        self.write(&value.to_le_bytes());
    }

    fn write_u64(&mut self, value: u64) {
        self.write(&value.to_le_bytes());
    }

    fn write_u16(&mut self, value: u16) {
        self.write(&value.to_le_bytes());
    }

    fn write_u8(&mut self, value: u8) {
        self.write(&[value]);
    }
}

/// `BuildHasher` plumbing for [`FnvHasher`]-keyed maps.
pub type FnvBuildHasher = BuildHasherDefault<FnvHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;
    use std::collections::HashMap;

    #[test]
    fn identity_is_identity() {
        let w = PackedWord::identity(38);
        assert_eq!(w.len(), 38);
        for i in 0..38 {
            assert_eq!(w[i], i as u8);
        }
    }

    #[test]
    fn from_slice_roundtrips() {
        let images = [3u8, 1, 0, 2];
        let w = PackedWord::from_slice(&images);
        assert_eq!(w.as_slice(), &images);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn map_through_composes() {
        // w = (0 1 2) cycle as table, composed with itself.
        let w = PackedWord::from_slice(&[1, 2, 0]);
        let ww = w.map_through(w.as_slice());
        assert_eq!(ww.as_slice(), &[2, 0, 1]);
        let www = ww.map_through(w.as_slice());
        assert_eq!(www, PackedWord::identity(3));
    }

    #[test]
    fn equality_ignores_capacity_tail() {
        let a = PackedWord::from_slice(&[1, 0]);
        let b = PackedWord::from_slice(&[1, 0]);
        assert_eq!(a, b);
        let c = PackedWord::from_slice(&[1, 0, 2]);
        assert_ne!(a, c);
    }

    #[test]
    fn hash_agrees_with_equality() {
        let hash = |w: &PackedWord| {
            let mut h = DefaultHasher::new();
            w.hash(&mut h);
            h.finish()
        };
        let a = PackedWord::from_slice(&[2, 0, 1]);
        let b = PackedWord::from_slice(&[2, 0, 1]);
        assert_eq!(hash(&a), hash(&b));
    }

    #[test]
    fn works_as_fnv_map_key() {
        let mut map: HashMap<PackedWord, u32, FnvBuildHasher> = HashMap::default();
        map.insert(PackedWord::identity(8), 7);
        map.insert(PackedWord::from_slice(&[1, 0]), 9);
        assert_eq!(map.get(&PackedWord::identity(8)), Some(&7));
        assert_eq!(map.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds the packed capacity")]
    fn oversized_word_panics() {
        let images = vec![0u8; PackedWord::CAPACITY + 1];
        let _ = PackedWord::from_slice(&images);
    }

    #[test]
    fn wide_word_holds_the_4_wire_domain() {
        // 176 indices — the 4-wire permutable domain — overflow the
        // narrow capacity but fit the wide word.
        let images: Vec<u8> = (0..176).map(|i| (175 - i) as u8).collect();
        let w = PackedWord256::from_slice(&images);
        assert_eq!(w.len(), 176);
        assert_eq!(w.as_slice(), &images[..]);
        assert_eq!(w[0], 175);
        let id = PackedWord256::identity(176);
        assert_eq!(w.map_through(id.as_slice()), w);
    }

    #[test]
    #[should_panic(expected = "exceeds the packed capacity")]
    fn oversized_wide_word_panics() {
        let images = vec![0u8; PackedWord256::CAPACITY + 1];
        let _ = PackedWord256::from_slice(&images);
    }

    #[test]
    fn fnv_hash_matches_hasher_path() {
        use std::hash::BuildHasher;
        for word in [
            PackedWord::identity(38),
            PackedWord::from_slice(&[3, 1, 0, 2]),
            PackedWord::from_slice(&[]),
        ] {
            assert_eq!(
                word.fnv_hash(),
                FnvBuildHasher::default().hash_one(word),
                "{word:?}"
            );
        }
        let wide = PackedWord256::identity(176);
        assert_eq!(
            wide.fnv_hash(),
            FnvBuildHasher::default().hash_one(wide),
            "{wide:?}"
        );
    }

    #[test]
    fn fnv_distinguishes_write_lengths() {
        let mut a = FnvHasher::default();
        a.write(&[0, 0]);
        let mut b = FnvHasher::default();
        b.write(&[0]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn fnv_integer_writes_are_little_endian_bytes() {
        let mut by_int = FnvHasher::default();
        by_int.write_u128(0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10);
        let mut by_bytes = FnvHasher::default();
        by_bytes.write(&0x0102_0304_0506_0708_090a_0b0c_0d0e_0f10u128.to_le_bytes());
        assert_eq!(by_int.finish(), by_bytes.finish());
    }
}
