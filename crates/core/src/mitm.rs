//! Bidirectional (meet-in-the-middle) Minimum_Cost_Expressing.
//!
//! The unidirectional MCE must expand FMCF levels all the way to the
//! target's cost `t` — and the level sets grow geometrically (roughly
//! 4.5× per level for the paper's 18-gate library), so the last level
//! dominates the whole search. The bidirectional variant expands a
//! *second* frontier backward from the target and joins the two partway:
//! the split is adaptive, growing whichever frontier currently holds
//! fewer elements (see [`SynthesisEngine::synthesize_bidirectional`]),
//! so the dominant forward word levels stay as shallow as the coverage
//! invariant allows.
//!
//! The backward frontier does not need full domain words. A cascade
//! suffix is *reasonable after* a prefix exactly when, at each of its
//! gates, the current image of the binary set `S` avoids the gate's
//! banned set — and that image is fully described by the prefix's
//! S-trace (the 8 domain indices `S` maps to, packed into a `u64`).
//! The backward search therefore runs Dijkstra over `u64` traces,
//! starting from the target's trace and applying inverse gate images,
//! admitting an edge for gate `g` from trace `T` to `g⁻¹(T)` iff
//! `g⁻¹(T)` avoids `banned(g)` — the forward reasonability condition at
//! the point where `g` would fire. Joining a forward word `u` (cost `f`)
//! with a backward trace `T = trace(u)` (cost `b`) therefore yields, by
//! construction, a *reasonable* cascade of cost `f + b` realizing the
//! target: no post-hoc validation is needed.

use std::collections::{BTreeMap, HashSet};

use mvq_logic::Gate;
use mvq_perm::Perm;

use crate::engine::{trace_mask, SearchEngine, TraceIndex};
use crate::par::{self, FrontierMeta, ShardedSeen};
use crate::width::{MaskRepr, SearchWidth, TraceRepr, WordRepr};
use crate::word::FnvBuildHasher;
use crate::{Circuit, Synthesis};

/// Backward-frontier metadata: the trace's best-known cost and the
/// library gate whose *forward* application moves it one step toward the
/// target along the cheapest path so far (`u8::MAX` for the target trace
/// itself).
#[derive(Debug, Clone, Copy)]
struct BackMeta {
    cost: u32,
    gate: u8,
}

impl FrontierMeta for BackMeta {
    fn cost(&self) -> u32 {
        self.cost
    }

    fn with(cost: u32, gate: u8) -> Self {
        Self { cost, gate }
    }
}

/// Dijkstra frontier over S-traces, grown backward from a target trace.
struct BackwardFrontier<W: SearchWidth> {
    /// Binary-set size: how many bytes of each trace are populated.
    k: usize,
    /// Degree of parallelism (mirrors the owning engine's).
    threads: usize,
    seen: ShardedSeen<W::Trace, BackMeta>,
    pending: BTreeMap<u32, Vec<W::Trace>>,
    completed: Option<u32>,
    /// Traces first reached at exact cost `b` (gap levels are empty).
    levels: Vec<Vec<W::Trace>>,
}

impl<W: SearchWidth> BackwardFrontier<W> {
    fn new(target_trace: W::Trace, k: usize, threads: usize) -> Self {
        let mut seen: ShardedSeen<W::Trace, BackMeta> = ShardedSeen::for_threads(threads);
        seen.insert(
            target_trace,
            BackMeta {
                cost: 0,
                gate: u8::MAX,
            },
        );
        let mut pending = BTreeMap::new();
        pending.insert(0u32, vec![target_trace]);
        Self {
            k,
            threads,
            seen,
            pending,
            completed: None,
            levels: Vec::new(),
        }
    }

    fn exhausted(&self) -> bool {
        self.pending.is_empty()
    }

    fn expand_to_cost(&mut self, cb: u32, engine: &SearchEngine<W>) {
        while self.completed.is_none_or(|c| c < cb) {
            if !self.expand_next_level(engine) {
                break;
            }
        }
    }

    /// Expands one backward cost level. Returns `false` on exhaustion.
    ///
    /// Shares the sharded rendezvous pipeline with the forward engine:
    /// large trace buckets expand across threads with bit-identical
    /// results to the serial loop.
    fn expand_next_level(&mut self, engine: &SearchEngine<W>) -> bool {
        let Some((&cost, _)) = self.pending.first_key_value() else {
            return false;
        };
        // lint: allow(panic) first_key_value just proved the bucket key exists
        let raw_bucket = self.pending.remove(&cost).expect("bucket exists");
        let parallel = self.threads > 1 && raw_bucket.len() >= par::PAR_MIN_BUCKET;
        // Lazy decrease-key, mirroring the forward engine: drop copies
        // superseded by a cheaper rediscovery.
        let bucket: Vec<W::Trace> = if parallel {
            let seen = &self.seen;
            par::par_filter(&engine.pool, raw_bucket, |t| {
                // lint: allow(panic) every pending trace was inserted into seen on discovery
                seen.get(t).expect("pending trace is seen").cost == cost
            })
        } else {
            raw_bucket
                .into_iter()
                // lint: allow(panic) every pending trace was inserted into seen on discovery
                .filter(|t| self.seen.get(t).expect("pending trace is seen").cost == cost)
                .collect()
        };
        if parallel {
            let k = self.k;
            let expected_new = par::growth_hint(
                bucket.len(),
                self.levels.last().map_or(0, Vec::len),
                engine.gate_images.len(),
            );
            let pushes = par::expand_bucket(
                &engine.pool,
                &bucket,
                &mut self.seen,
                expected_new,
                &engine.probe,
                |_, &trace, emit| {
                    for gate_idx in 0..engine.gate_images.len() {
                        let prev =
                            apply_to_trace::<W>(trace, &engine.gate_inverse_images[gate_idx], k);
                        // Forward reasonability of `gate_idx` at the
                        // moment it would fire: the pre-image of S must
                        // avoid the banned set.
                        if trace_mask::<W>(prev, k).intersects(&engine.gate_banned[gate_idx]) {
                            continue;
                        }
                        emit(prev, cost + engine.gate_costs[gate_idx], gate_idx as u8);
                    }
                },
            );
            for (prev_cost, traces) in pushes {
                self.pending.entry(prev_cost).or_default().extend(traces);
            }
        } else {
            for &trace in &bucket {
                for gate_idx in 0..engine.gate_images.len() {
                    let prev =
                        apply_to_trace::<W>(trace, &engine.gate_inverse_images[gate_idx], self.k);
                    // Forward reasonability of `gate_idx` at the moment it
                    // would fire: the pre-image of S must avoid the banned set.
                    if trace_mask::<W>(prev, self.k).intersects(&engine.gate_banned[gate_idx]) {
                        continue;
                    }
                    let prev_cost = cost + engine.gate_costs[gate_idx];
                    if par::admit(self.seen.entry(prev), prev_cost, gate_idx as u8) {
                        self.pending.entry(prev_cost).or_default().push(prev);
                    }
                }
            }
        }
        while self.levels.len() < cost as usize {
            self.levels.push(Vec::new());
        }
        self.levels.push(bucket);
        self.completed = Some(cost);
        true
    }

    /// The forward gate cascade leading from `start` to the target trace.
    fn suffix_gates(&self, start: W::Trace, engine: &SearchEngine<W>) -> Vec<Gate> {
        self.suffix_gate_indices(start, engine)
            .into_iter()
            .map(|gate_idx| engine.library.gates()[gate_idx].gate())
            .collect()
    }

    /// The gate-index chain leading from `start` to the target trace.
    fn suffix_gate_indices(&self, start: W::Trace, engine: &SearchEngine<W>) -> Vec<usize> {
        let mut indices = Vec::new();
        let mut current = start;
        loop {
            // lint: allow(panic) backward walk follows links stored when the trace was discovered
            let meta = self.seen.get(&current).expect("trace was discovered");
            if meta.gate == u8::MAX {
                break;
            }
            indices.push(meta.gate as usize);
            current = apply_to_trace::<W>(current, &engine.gate_images[meta.gate as usize], self.k);
        }
        indices
    }

    /// Streams *every* minimal gate chain leading from `start` to the
    /// target trace through the visitor `f`, found by walking the
    /// dist-consistent edges of the Dijkstra DAG (a trace may admit
    /// several minimal suffixes; distinct cascades that share the trace
    /// path can still differ on non-binary domain points, so witness
    /// counting needs them all). Visiting instead of materializing a
    /// `Vec<Vec<u8>>` keeps the join loop's allocation flat at
    /// witness-heavy depths.
    fn for_each_minimal_chain(
        &self,
        start: W::Trace,
        engine: &SearchEngine<W>,
        mut f: impl FnMut(&[u8]),
    ) {
        let mut stack = Vec::new();
        self.visit_minimal_chains(start, engine, &mut stack, &mut f);
    }

    fn visit_minimal_chains(
        &self,
        trace: W::Trace,
        engine: &SearchEngine<W>,
        stack: &mut Vec<u8>,
        f: &mut impl FnMut(&[u8]),
    ) {
        // lint: allow(panic) visit starts from a discovered trace and follows stored links
        let dist = self.seen.get(&trace).expect("trace was discovered").cost;
        if dist == 0 {
            // Only the target trace has cost 0 (gate costs are positive).
            f(stack);
            return;
        }
        let mask = trace_mask::<W>(trace, self.k);
        for gate_idx in 0..engine.gate_images.len() {
            if mask.intersects(&engine.gate_banned[gate_idx]) {
                continue; // gate not reasonable at this point
            }
            let gate_cost = engine.gate_costs[gate_idx];
            if gate_cost > dist {
                continue;
            }
            let next = apply_to_trace::<W>(trace, &engine.gate_images[gate_idx], self.k);
            // Edge is on a minimal suffix iff it is dist-consistent.
            if self
                .seen
                .get(&next)
                .is_some_and(|meta| meta.cost == dist - gate_cost)
            {
                stack.push(gate_idx as u8);
                self.visit_minimal_chains(next, engine, stack, f);
                stack.pop();
            }
        }
    }
}

/// Applies a gate image table to each packed byte of a trace.
fn apply_to_trace<W: SearchWidth>(trace: W::Trace, table: &[u8], k: usize) -> W::Trace {
    let mut out = W::Trace::ZERO;
    for i in 0..k {
        let point = trace.byte(i);
        out = out.or_byte(i, table[point as usize]);
    }
    out
}

impl<W: SearchWidth> SearchEngine<W> {
    /// Meet-in-the-middle MCE: synthesizes a minimal-cost implementation
    /// of `target` by joining the cached forward levels against a
    /// backward frontier expanded from the target side.
    ///
    /// Produces cost-identical results to [`Self::synthesize`] (including
    /// [`Synthesis::implementation_count`]), but only ever expands
    /// forward levels partway to the target cost, which is decisively
    /// cheaper for deep targets (the level sets grow geometrically). The
    /// forward levels remain shared with the unidirectional path, so
    /// mixed workloads reuse one cache.
    ///
    /// The split is *adaptive*: instead of always meeting at `⌈c/2⌉`,
    /// each step grows whichever frontier currently holds fewer elements
    /// (forward words vs backward traces), until the two depths jointly
    /// cover cost `c`. Coverage invariant: every cost-`c` cascade splits
    /// at its longest suffix of cost ≤ `back_done`, leaving a prefix of
    /// cost at most `c − back_done + max_gate − 1` — so
    /// `fwd_done + back_done ≥ c + max_gate − 1` (or either side alone
    /// reaching `c`) guarantees every minimal witness is joined. The
    /// choice of split never changes costs or witness counts, only how
    /// the work divides between the frontiers.
    ///
    /// Returns `None` if the target's minimal cost exceeds `cb`.
    ///
    /// # Panics
    ///
    /// Panics if `target.degree() != 2^n` for the library's wire count.
    pub fn synthesize_bidirectional(&mut self, target: &Perm, cb: u32) -> Option<Synthesis> {
        let n = self.library.domain().wires();
        let (key, not_layer) = self.reduce_target(target);
        let k = self.binary0.len();
        let target_trace = self.target_trace(&key);
        let mut back: BackwardFrontier<W> = BackwardFrontier::new(target_trace, k, self.threads());
        let max_gate = self.max_gate_cost();

        // Materialize both cost-0 levels before any join.
        self.expand_to_cost(0);
        back.expand_to_cost(0, self);

        for c in 0..=cb {
            // Adaptive split: grow the currently-smaller frontier until
            // the coverage invariant holds for cost c.
            loop {
                let fwd_done = self.completed.map_or(0, |v| v);
                let back_done = back.completed.map_or(0, |v| v);
                if fwd_done + back_done >= c + (max_gate - 1) || fwd_done >= c || back_done >= c {
                    break;
                }
                let fwd_exhausted = self.exhausted();
                let back_exhausted = back.exhausted();
                if fwd_exhausted && back_exhausted {
                    break;
                }
                let grow_forward = if fwd_exhausted {
                    false
                } else if back_exhausted {
                    true
                } else {
                    let fwd_size = self.levels.get(fwd_done as usize).map_or(0, Vec::len);
                    let back_size = back.levels.get(back_done as usize).map_or(0, Vec::len);
                    fwd_size <= back_size
                };
                if grow_forward {
                    self.expand_next_level();
                } else {
                    back.expand_next_level(self);
                }
            }

            let fwd_done = self.completed.map_or(0, |v| v);
            let back_done = back.completed.map_or(0, |v| v);
            // Build the join indexes up front: `join_at_cost` runs on a
            // shared reference so the per-bucket scan can shard across
            // the worker pool.
            for b in 0..=back_done.min(c) {
                let f = c - b;
                if f <= fwd_done && !back.levels[b as usize].is_empty() {
                    self.ensure_trace_index(f);
                }
            }
            if let Some((u, trace, count)) = self.join_at_cost(&back, c, fwd_done, back_done) {
                self.probe.on(|p| p.bidi_split(fwd_done, back_done, c));
                let mut gates = not_layer.clone();
                gates.extend(self.reconstruct(&u));
                gates.extend(back.suffix_gates(trace, self));
                debug_assert_eq!(self.cost_model().cascade_cost(&gates), c);
                return Some(Synthesis {
                    circuit: Circuit::new(n, gates),
                    cost: c,
                    not_layer,
                    implementation_count: count,
                });
            }
            // Both frontiers exhausted and out of joinable range: the
            // target is unreachable, stop early.
            if self.exhausted() && back.exhausted() && c >= fwd_done + back_done {
                return None;
            }
        }
        None
    }

    /// Read-only meet-in-the-middle MCE against the engine's cached
    /// forward levels: the backward frontier is per-query (never shared),
    /// so concurrent readers can serve deep targets without taking a
    /// write lock.
    ///
    /// Resolution is cost- and count-identical to
    /// [`Self::synthesize_bidirectional`]: the forward depth is pinned to
    /// what the cache already holds (capped at `cb`), and only the
    /// backward frontier grows until the coverage invariant holds.
    /// Definitive `None` is sound even when the backward frontier
    /// exhausts first: joining the identity word (forward level 0)
    /// against a full suffix chain bounds any reachable target's minimal
    /// cost by the deepest backward level, so nothing below `cb` is
    /// missed.
    ///
    /// Returns [`CachedBidirectional::NeedsPreparation`] when shared
    /// state only a writer may build is missing — forward level 0 on a
    /// cold engine, or a level's S-trace join index. Call
    /// [`Self::prepare_bidirectional`] under a write lock, then retry.
    pub fn synthesize_bidirectional_cached(&self, target: &Perm, cb: u32) -> CachedBidirectional {
        let Some(fwd_done) = self.completed else {
            return CachedBidirectional::NeedsPreparation;
        };
        let usable = fwd_done.min(cb);
        if (0..=usable).any(|f| self.trace_index[f as usize].is_none()) {
            return CachedBidirectional::NeedsPreparation;
        }
        let n = self.library.domain().wires();
        let (key, not_layer) = self.reduce_target(target);
        let k = self.binary0.len();
        let mut back: BackwardFrontier<W> =
            BackwardFrontier::new(self.target_trace(&key), k, self.threads());
        back.expand_to_cost(0, self);
        let max_gate = self.max_gate_cost();
        for c in 0..=cb {
            // Fixed forward depth: grow only the backward frontier until
            // the coverage invariant holds for cost c (the split choice
            // never changes costs or witness counts, only where the work
            // lands).
            loop {
                let back_done = back.completed.map_or(0, |v| v);
                if usable + back_done >= c + (max_gate - 1) || back_done >= c || usable >= c {
                    break;
                }
                if !back.expand_next_level(self) {
                    break; // backward space exhausted: every trace known
                }
            }
            let back_done = back.completed.map_or(0, |v| v);
            if let Some((u, trace, count)) = self.join_at_cost(&back, c, usable, back_done) {
                self.probe.on(|p| p.bidi_split(usable, back_done, c));
                let mut gates = not_layer.clone();
                gates.extend(self.reconstruct(&u));
                gates.extend(back.suffix_gates(trace, self));
                debug_assert_eq!(self.cost_model().cascade_cost(&gates), c);
                return CachedBidirectional::Resolved(Some(Synthesis {
                    circuit: Circuit::new(n, gates),
                    cost: c,
                    not_layer,
                    implementation_count: count,
                }));
            }
        }
        CachedBidirectional::Resolved(None)
    }

    /// Builds the shared state [`Self::synthesize_bidirectional_cached`]
    /// reads: forward level 0 on a cold engine, plus the S-trace join
    /// index of every cached level up to `cb`. Idempotent; returns the
    /// number of forward levels expanded (0 or 1) so hosts can meter the
    /// work.
    pub fn prepare_bidirectional(&mut self, cb: u32) -> usize {
        let mut expanded = 0;
        if self.completed.is_none() && self.expand_next_level() {
            expanded = 1;
        }
        let top = self.completed.map_or(0, |c| c.min(cb));
        for f in 0..=top {
            self.ensure_trace_index(f);
        }
        expanded
    }

    /// The S-trace pinned by a reduced target word: the 0-based domain
    /// index each binary pattern must map to.
    fn target_trace(&self, key: &W::Word) -> W::Trace {
        let binary = self.library.binary_set();
        key.as_slice()
            .iter()
            .enumerate()
            .fold(W::Trace::ZERO, |acc, (i, &rank)| {
                acc.or_byte(i, (binary[rank as usize] - 1) as u8)
            })
    }

    /// Joins the cached forward levels against the backward frontier at
    /// total cost `c`: returns the first witness (word, backward trace)
    /// in deterministic scan order plus the count of distinct minimal
    /// cascades, or `None` when nothing joins at this cost.
    ///
    /// Requires the S-trace index of every joinable forward level
    /// (`ensure_trace_index`) to be built already — the scan runs on a
    /// shared reference so large backward buckets shard across the
    /// engine's worker pool, each shard folding a private distinct set
    /// and first-witness candidate, merged in shard order for
    /// bit-identical results to the serial scan at any thread count.
    fn join_at_cost(
        &self,
        back: &BackwardFrontier<W>,
        c: u32,
        fwd_done: u32,
        back_done: u32,
    ) -> Option<(W::Word, W::Trace, usize)> {
        let mut first: Option<(W::Word, W::Trace)> = None;
        let mut distinct: HashSet<W::Word, FnvBuildHasher> = HashSet::default();
        for b in 0..=back_done.min(c) {
            let f = c - b;
            if f > fwd_done {
                continue;
            }
            let bucket = &back.levels[b as usize];
            if bucket.is_empty() {
                continue;
            }
            let index = self.trace_index_ref(f);
            let level = &self.levels[f as usize];
            if self.threads() > 1 && bucket.len() >= par::PAR_MIN_BUCKET {
                let workers = par::workers_for(self.threads(), bucket.len());
                let ranges: Vec<(usize, usize)> =
                    par::chunk_ranges(bucket.len(), workers).collect();
                type Partial<W> = (
                    HashSet<<W as SearchWidth>::Word, FnvBuildHasher>,
                    Option<(<W as SearchWidth>::Word, <W as SearchWidth>::Trace)>,
                );
                let mut partials: Vec<Partial<W>> = Vec::new();
                partials.resize_with(ranges.len(), Default::default);
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
                    .iter()
                    .zip(partials.iter_mut())
                    .map(|(&(start, end), slot)| {
                        let chunk = &bucket[start..end];
                        Box::new(move || {
                            let (local, local_first) = slot;
                            for &trace in chunk {
                                self.join_trace(back, trace, index, level, local, local_first);
                            }
                        }) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                self.pool.run(tasks);
                // Deterministic merge in shard order: the distinct set is
                // order-insensitive, and the first shard holding a
                // witness holds the serial scan's first witness.
                for (local, local_first) in partials {
                    if distinct.is_empty() {
                        distinct = local;
                    } else {
                        distinct.extend(local);
                    }
                    if first.is_none() {
                        first = local_first;
                    }
                }
            } else {
                for &trace in bucket {
                    self.join_trace(back, trace, index, level, &mut distinct, &mut first);
                }
            }
        }
        first.map(|(u, trace)| (u, trace, distinct.len()))
    }

    /// Folds one backward trace into the join accumulators: every
    /// forward word matching the trace, pushed through every minimal
    /// suffix chain (cascades sharing a trace path can differ on
    /// non-binary points, and each yields its own witness).
    fn join_trace(
        &self,
        back: &BackwardFrontier<W>,
        trace: W::Trace,
        index: &TraceIndex<W::Trace>,
        level: &[W::Word],
        distinct: &mut HashSet<W::Word, FnvBuildHasher>,
        first: &mut Option<(W::Word, W::Trace)>,
    ) {
        let Some(matches) = index.get(&trace) else {
            return;
        };
        back.for_each_minimal_chain(trace, self, |chain| {
            for &word_idx in matches {
                let u = level[word_idx as usize];
                let joined = chain
                    .iter()
                    .fold(u, |w, &g| w.map_through(&self.gate_images[g as usize]));
                distinct.insert(joined);
            }
        });
        if first.is_none() {
            if let Some(&word_idx) = matches.first() {
                *first = Some((level[word_idx as usize], trace));
            }
        }
    }
}

/// The outcome of a read-only
/// [`SearchEngine::synthesize_bidirectional_cached`] query.
#[derive(Debug, Clone)]
pub enum CachedBidirectional {
    /// The cached forward levels (plus a per-query backward frontier)
    /// decide the query: a minimal circuit within the bound, or a
    /// definitive `None` — cost- and count-identical to a mutable
    /// [`SearchEngine::synthesize_bidirectional`] call.
    Resolved(Option<Synthesis>),
    /// Shared state only a writer may build is missing (forward level 0
    /// or a level's S-trace join index). Call
    /// [`SearchEngine::prepare_bidirectional`] under a write lock, then
    /// retry.
    NeedsPreparation,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{known, CostModel, SynthesisEngine, SynthesisStrategy};
    use mvq_logic::GateLibrary;

    #[test]
    fn peres_bidirectional_matches_unidirectional() {
        let mut e = SynthesisEngine::unit_cost();
        let bidi = e
            .synthesize_bidirectional(&known::peres_perm(), 5)
            .expect("reachable");
        assert_eq!(bidi.cost, 4);
        assert_eq!(bidi.implementation_count, 2);
        assert!(bidi
            .circuit
            .verify_against_binary_perm(&known::peres_perm()));
        // Forward levels stopped at half cost.
        assert!(e.completed.is_some_and(|c| c <= 2));
    }

    #[test]
    fn toffoli_bidirectional_cost_5_four_implementations() {
        let mut e = SynthesisEngine::unit_cost();
        let syn = e
            .synthesize_bidirectional(&known::toffoli_perm(), 6)
            .expect("reachable");
        assert_eq!(syn.cost, 5);
        assert_eq!(syn.implementation_count, 4);
        assert!(syn
            .circuit
            .verify_against_binary_perm(&known::toffoli_perm()));
    }

    #[test]
    fn fredkin_costs_7_bidirectionally() {
        // The unidirectional search needs the full cost-7 level set
        // (millions of words) for this; meeting in the middle keeps both
        // frontiers at cost ≤ 4.
        let mut e = SynthesisEngine::unit_cost();
        assert!(e
            .synthesize_bidirectional(&known::fredkin_perm(), 6)
            .is_none());
        let syn = e
            .synthesize_bidirectional(&known::fredkin_perm(), 7)
            .expect("cost 7");
        assert_eq!(syn.cost, 7);
        // Ground truth from the unidirectional engine: 16 witnesses.
        assert_eq!(syn.implementation_count, 16);
        assert!(syn
            .circuit
            .verify_against_binary_perm(&known::fredkin_perm()));
        assert!(e.completed.is_some_and(|c| c <= 4));
    }

    #[test]
    fn cost_7_witness_count_needs_all_minimal_suffixes() {
        // Regression: reconstructing only the canonical suffix per
        // backward trace undercounted this cost-7 class as 14; the
        // unidirectional ground truth is 16 (distinct minimal cascades
        // can share a trace path yet differ on non-binary points).
        let target: Perm = "(3,5)(4,6,8)".parse::<Perm>().unwrap().extended(8);
        let mut e = SynthesisEngine::unit_cost();
        let syn = e.synthesize_bidirectional(&target, 7).expect("cost 7");
        assert_eq!(syn.cost, 7);
        assert_eq!(syn.implementation_count, 16);
        assert!(syn.circuit.verify_against_binary_perm(&target));
    }

    #[test]
    fn identity_and_not_layer_targets() {
        let mut e = SynthesisEngine::unit_cost();
        let id = e
            .synthesize_bidirectional(&Perm::identity(8), 2)
            .expect("trivial");
        assert_eq!(id.cost, 0);
        assert!(id.circuit.gates().is_empty());
        // NOT(C) target: coset layer only.
        let target: Perm = "(1,2)(3,4)(5,6)(7,8)".parse().unwrap();
        let syn = e.synthesize_bidirectional(&target, 2).expect("not layer");
        assert_eq!(syn.cost, 0);
        assert!(!syn.not_layer.is_empty());
        assert!(syn.circuit.verify_against_binary_perm(&target));
    }

    #[test]
    fn bidirectional_honors_cost_bound_warm_and_cold() {
        let mut e = SynthesisEngine::unit_cost();
        assert!(e
            .synthesize_bidirectional(&known::toffoli_perm(), 4)
            .is_none());
        // Warm in both frontier caches.
        e.expand_to_cost(5);
        assert!(e
            .synthesize_bidirectional(&known::toffoli_perm(), 4)
            .is_none());
    }

    #[test]
    fn low_cost_levels_agree_between_strategies() {
        // Every class of cost ≤ 3 must synthesize to the same cost and
        // implementation count under both strategies (warm engines:
        // level caches are shared across the queries).
        let mut e = SynthesisEngine::unit_cost();
        let mut uni = SynthesisEngine::unit_cost();
        let mut bidi = SynthesisEngine::unit_cost();
        for kk in 0..=3u32 {
            for (perm, _) in e.reversible_circuits_at_cost(kk) {
                let a = uni.synthesize(&perm, 4).expect("reachable");
                let b = bidi.synthesize_bidirectional(&perm, 4).expect("reachable");
                assert_eq!(a.cost, b.cost, "class {perm}");
                assert_eq!(
                    a.implementation_count, b.implementation_count,
                    "class {perm}"
                );
                assert!(b.circuit.verify_against_binary_perm(&perm));
            }
        }
    }

    #[test]
    fn weighted_model_splits_correctly() {
        // Max gate cost 2 exercises the `max_gate − 1` slack in the
        // adaptive coverage invariant (a cost-c witness may leave a
        // prefix up to `c − back_done + max_gate − 1`).
        let lib = GateLibrary::standard(3);
        let mut e = SynthesisEngine::new(lib, CostModel::weighted(2, 2, 1));
        let syn = e
            .synthesize_bidirectional(&known::peres_perm(), 8)
            .expect("reachable");
        assert_eq!(syn.cost, 7);
        assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
    }

    #[test]
    fn weighted_model_is_dijkstra_exact_across_strategies() {
        // Regression: first-seen-wins frontier insertion pinned words at
        // the cost of their first (possibly expensive) discovery, so
        // under asymmetric gate costs `synthesize` reported cost 7 for
        // this class while a reasonable all-V cost-6 cascade exists.
        let target: Perm = "(3,5)(4,6)".parse::<Perm>().unwrap().extended(8);
        let model = CostModel::weighted(1, 2, 3);
        let mut uni = SynthesisEngine::new(GateLibrary::standard(3), model);
        let mut bidi = SynthesisEngine::new(GateLibrary::standard(3), model);
        let a = uni.synthesize(&target, 8).expect("reachable");
        let b = bidi
            .synthesize_bidirectional(&target, 8)
            .expect("reachable");
        assert_eq!(a.cost, 6, "all-V witness: VCB*VCB*VBA*VBA*VCB*VCB");
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.implementation_count, b.implementation_count);
        assert_eq!(model.cascade_cost(a.circuit.gates()), a.cost);
        assert!(a.circuit.verify_against_binary_perm(&target));
        assert!(b.circuit.verify_against_binary_perm(&target));
    }

    #[test]
    fn weighted_classes_agree_across_strategies() {
        // Every class within weighted cost 5 must report the same cost
        // under both strategies, and its witness cascade must price out
        // at exactly the class cost.
        let model = CostModel::weighted(1, 2, 3);
        let mut enumerator = SynthesisEngine::new(GateLibrary::standard(3), model);
        let mut uni = SynthesisEngine::new(GateLibrary::standard(3), model);
        let mut bidi = SynthesisEngine::new(GateLibrary::standard(3), model);
        for k in 0..=5u32 {
            for (perm, circuit) in enumerator.reversible_circuits_at_cost(k) {
                assert_eq!(model.cascade_cost(circuit.gates()), k, "witness of {perm}");
                let a = uni.synthesize(&perm, 5).expect("reachable");
                let b = bidi.synthesize_bidirectional(&perm, 5).expect("reachable");
                assert_eq!(a.cost, k, "unidirectional {perm}");
                assert_eq!(b.cost, k, "bidirectional {perm}");
                assert_eq!(a.implementation_count, b.implementation_count, "{perm}");
            }
        }
    }

    #[test]
    fn two_wire_bidirectional() {
        let lib = GateLibrary::standard(2);
        let mut e = SynthesisEngine::new(lib, CostModel::unit());
        let target: Perm = "(3,4)".parse::<Perm>().unwrap().extended(4);
        let syn = e.synthesize_bidirectional(&target, 3).expect("single CNOT");
        assert_eq!(syn.cost, 1);
    }

    #[test]
    fn two_wire_swap_agrees_across_strategies() {
        // The wire swap needs three Feynman gates; a deliberately huge
        // bound must still terminate promptly on the tiny 2-wire space.
        let target: Perm = "(2,3)".parse::<Perm>().unwrap().extended(4);
        let mut bidi = SynthesisEngine::new(GateLibrary::standard(2), CostModel::unit());
        let mut uni = SynthesisEngine::new(GateLibrary::standard(2), CostModel::unit());
        let b = bidi.synthesize_bidirectional(&target, 30).expect("swap");
        let u = uni.synthesize(&target, 30).expect("swap");
        assert_eq!(b.cost, u.cost);
        assert_eq!(b.implementation_count, u.implementation_count);
        assert!(b.circuit.verify_against_binary_perm(&target));
    }

    #[test]
    fn cached_bidirectional_matches_mutable_path() {
        let mut e = SynthesisEngine::unit_cost();
        // Cold engine: the read path must refuse rather than mutate.
        assert!(matches!(
            e.synthesize_bidirectional_cached(&known::fredkin_perm(), 7),
            CachedBidirectional::NeedsPreparation
        ));
        assert_eq!(e.prepare_bidirectional(7), 1);
        // Forward level 0 alone now decides any query read-only; the
        // backward frontier carries the full depth per query.
        let CachedBidirectional::Resolved(Some(syn)) =
            e.synthesize_bidirectional_cached(&known::fredkin_perm(), 7)
        else {
            panic!("prepared engine must resolve");
        };
        assert_eq!(syn.cost, 7);
        assert_eq!(syn.implementation_count, 16);
        assert!(syn
            .circuit
            .verify_against_binary_perm(&known::fredkin_perm()));
        // Under-bound queries resolve to a definitive None.
        let CachedBidirectional::Resolved(missed) =
            e.synthesize_bidirectional_cached(&known::fredkin_perm(), 6)
        else {
            panic!("prepared engine must resolve");
        };
        assert!(missed.is_none());
        // Deepening the forward cache invalidates the missing indexes;
        // re-preparation is cheap (no expansion) and the warmer levels
        // shorten the backward legs.
        e.expand_to_cost(3);
        assert_eq!(e.prepare_bidirectional(7), 0);
        let CachedBidirectional::Resolved(Some(again)) =
            e.synthesize_bidirectional_cached(&known::toffoli_perm(), 7)
        else {
            panic!("prepared engine must resolve");
        };
        assert_eq!(again.cost, 5);
        assert_eq!(again.implementation_count, 4);
        assert!(again
            .circuit
            .verify_against_binary_perm(&known::toffoli_perm()));
    }

    #[test]
    fn strategy_dispatch_reaches_bidirectional() {
        let mut e = SynthesisEngine::unit_cost();
        let syn = e
            .synthesize_with(SynthesisStrategy::Bidirectional, &known::peres_perm(), 5)
            .expect("reachable");
        assert_eq!(syn.cost, 4);
    }
}
