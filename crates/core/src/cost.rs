use mvq_logic::Gate;

/// A quantum cost model assigning a positive integer cost to every 2-qubit
/// gate class (NOT gates are always free, as in the paper).
///
/// The paper's headline results use [`CostModel::unit`] — "for
/// simplification, we consider each of the 2-qubit gates (XOR,
/// controlled-V, controlled-V⁺) to have a quantum cost of 1" — but notes
/// the method "can be easily modified to take into account the precise NMR
/// costs". [`CostModel::weighted`] provides that generalization and powers
/// the cost-model ablation bench.
///
/// # Examples
///
/// ```
/// use mvq_core::CostModel;
/// use mvq_logic::Gate;
///
/// let unit = CostModel::unit();
/// assert_eq!(unit.cost(Gate::v(1, 0)), 1);
/// assert_eq!(unit.cost(Gate::not(0)), 0);
///
/// let nmr = CostModel::weighted(2, 2, 1);
/// assert_eq!(nmr.cost(Gate::v(1, 0)), 2);
/// assert_eq!(nmr.cost(Gate::feynman(1, 0)), 1);
/// ```
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CostModel {
    v_cost: u32,
    v_dagger_cost: u32,
    feynman_cost: u32,
}

impl CostModel {
    /// The paper's model: every 2-qubit gate costs 1.
    pub fn unit() -> Self {
        Self {
            v_cost: 1,
            v_dagger_cost: 1,
            feynman_cost: 1,
        }
    }

    /// A weighted model with separate costs for controlled-V,
    /// controlled-V⁺ and Feynman gates.
    ///
    /// # Panics
    ///
    /// Panics if any cost is zero (the level-expansion search requires
    /// strictly positive 2-qubit costs).
    pub fn weighted(v_cost: u32, v_dagger_cost: u32, feynman_cost: u32) -> Self {
        assert!(
            v_cost > 0 && v_dagger_cost > 0 && feynman_cost > 0,
            "2-qubit gate costs must be positive"
        );
        Self {
            v_cost,
            v_dagger_cost,
            feynman_cost,
        }
    }

    /// The `(controlled-V, controlled-V⁺, Feynman)` weights of the model
    /// — the tuple [`CostModel::weighted`] was built from.
    pub fn weights(&self) -> (u32, u32, u32) {
        (self.v_cost, self.v_dagger_cost, self.feynman_cost)
    }

    /// The cost of a gate under this model.
    pub fn cost(&self, gate: Gate) -> u32 {
        match gate {
            Gate::V { .. } => self.v_cost,
            Gate::VDagger { .. } => self.v_dagger_cost,
            Gate::Feynman { .. } => self.feynman_cost,
            Gate::Not { .. } => 0,
        }
    }

    /// The total cost of a cascade.
    pub fn cascade_cost(&self, gates: &[Gate]) -> u32 {
        gates.iter().map(|&g| self.cost(g)).sum()
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::unit()
    }
}

/// Error returned when parsing a [`CostModel`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCostModelError {
    input: String,
}

impl std::fmt::Display for ParseCostModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid cost model `{}` (expected `unit`, `V,VD,F` or `weighted(V,VD,F)` \
             with positive weights)",
            self.input
        )
    }
}

impl std::error::Error for ParseCostModelError {}

impl std::str::FromStr for CostModel {
    type Err = ParseCostModelError;

    /// Parses `unit`, a bare weight triple `V,VD,F`, or
    /// `weighted(V,VD,F)` — the grammar shared by the CLI's `--model`
    /// flag.
    ///
    /// # Examples
    ///
    /// ```
    /// use mvq_core::CostModel;
    ///
    /// assert_eq!("unit".parse::<CostModel>().unwrap(), CostModel::unit());
    /// assert_eq!(
    ///     "2,2,1".parse::<CostModel>().unwrap(),
    ///     CostModel::weighted(2, 2, 1)
    /// );
    /// assert_eq!(
    ///     "weighted(1,2,3)".parse::<CostModel>().unwrap(),
    ///     CostModel::weighted(1, 2, 3)
    /// );
    /// assert!("0,1,1".parse::<CostModel>().is_err());
    /// ```
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseCostModelError { input: s.into() };
        let text = s.trim();
        if text.eq_ignore_ascii_case("unit") {
            return Ok(Self::unit());
        }
        let triple = text
            .strip_prefix("weighted(")
            .and_then(|rest| rest.strip_suffix(')'))
            .unwrap_or(text);
        let mut weights = triple.split(',').map(|w| w.trim().parse::<u32>());
        let (Some(Ok(v)), Some(Ok(vd)), Some(Ok(f)), None) = (
            weights.next(),
            weights.next(),
            weights.next(),
            weights.next(),
        ) else {
            return Err(err());
        };
        if v == 0 || vd == 0 || f == 0 {
            return Err(err());
        }
        Ok(Self::weighted(v, vd, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_model_counts_two_qubit_gates() {
        let m = CostModel::unit();
        let cascade = [
            Gate::not(0),
            Gate::v(1, 0),
            Gate::feynman(2, 1),
            Gate::v_dagger(2, 0),
            Gate::not(2),
        ];
        assert_eq!(m.cascade_cost(&cascade), 3);
    }

    #[test]
    fn weighted_model() {
        let m = CostModel::weighted(3, 4, 1);
        assert_eq!(m.cost(Gate::v(0, 1)), 3);
        assert_eq!(m.cost(Gate::v_dagger(0, 1)), 4);
        assert_eq!(m.cost(Gate::feynman(0, 1)), 1);
        assert_eq!(m.cost(Gate::not(1)), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cost_rejected() {
        let _ = CostModel::weighted(1, 0, 1);
    }

    #[test]
    fn default_is_unit() {
        assert_eq!(CostModel::default(), CostModel::unit());
    }

    #[test]
    fn parses_the_cli_grammar() {
        assert_eq!("unit".parse::<CostModel>().unwrap(), CostModel::unit());
        assert_eq!("UNIT".parse::<CostModel>().unwrap(), CostModel::unit());
        assert_eq!(
            " 2, 2 ,1 ".parse::<CostModel>().unwrap(),
            CostModel::weighted(2, 2, 1)
        );
        assert_eq!(
            "weighted(1,2,3)".parse::<CostModel>().unwrap(),
            CostModel::weighted(1, 2, 3)
        );
        for bad in [
            "",
            "unitary",
            "1,2",
            "1,2,3,4",
            "0,1,1",
            "1,x,1",
            "weighted(1,2",
        ] {
            assert!(bad.parse::<CostModel>().is_err(), "should reject `{bad}`");
        }
    }
}
