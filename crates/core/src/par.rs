//! Parallel sharded level expansion for the FMCF frontiers.
//!
//! Each Dijkstra level of the search — the forward word frontier of
//! [`crate::SynthesisEngine`] and the backward S-trace frontier of the
//! meet-in-the-middle join — expands its bucket of frontier elements
//! through the gate library. Successor *generation* is embarrassingly
//! parallel per element; successor *insertion* into the `seen` map is
//! where naive parallelism dies: one shared map means one lock.
//!
//! The machinery here keeps the insert phase parallel **and** the
//! results bit-identical to the serial engine:
//!
//! 1. the `seen` map is split into `S` shards by FNV hash of the key
//!    ([`ShardedSeen`]);
//! 2. workers generate successors for disjoint contiguous chunks of the
//!    bucket, tagging each with a global sequence number and routing it
//!    into a per-worker, per-shard local buffer (rendezvous by hash; no
//!    locks, no contention);
//! 3. workers then swap roles — each owns a contiguous shard range and
//!    drains every chunk's buffer for its shards *in sequence order*,
//!    applying exactly the serial insert-or-decrease-key rule;
//! 4. accepted pushes are merged back across shards by sequence number,
//!    so the pending cost buckets end up in precisely the order the
//!    serial loop would have produced.
//!
//! Because a key always hashes to the same shard, every discovery of a
//! word is adjudicated in one shard, in serial order; because the merge
//! restores the global sequence, every downstream structure (levels,
//! traces, class witnesses, Dijkstra's lazy decrease-key buckets) is
//! byte-for-byte identical for any thread count.

use std::cmp::Reverse;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, BinaryHeap, HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

use mvq_obs::ProbeHandle;

use crate::width::ShardKey;
use crate::word::FnvBuildHasher;

/// Buckets smaller than this are expanded serially even on a
/// multi-threaded engine: thread spawn latency would dominate.
pub(crate) const PAR_MIN_BUCKET: usize = 128;

/// Smallest number of items worth handing to an extra worker.
const MIN_ITEMS_PER_WORKER: usize = 64;

/// Bucket elements processed per rendezvous block. Successor records are
/// materialized one block at a time, keeping peak memory flat even for
/// multi-million-word levels (a block holds at most
/// `BLOCK_ITEMS × |library|` records).
const BLOCK_ITEMS: usize = 1 << 16;

/// Resolves the degree of parallelism for level expansion.
///
/// Priority: an explicit `requested` value, then the `MVQ_THREADS`
/// environment variable, then [`std::thread::available_parallelism`].
/// The result is always at least 1.
///
/// # Examples
///
/// ```
/// use mvq_core::resolve_threads;
///
/// assert_eq!(resolve_threads(Some(4)), 4);
/// assert!(resolve_threads(None) >= 1);
/// ```
pub fn resolve_threads(requested: Option<usize>) -> usize {
    if let Some(n) = requested {
        return n.max(1);
    }
    if let Ok(text) = std::env::var("MVQ_THREADS") {
        if let Ok(n) = text.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// A batch task after lifetime erasure (see [`WorkerPool::run`]).
type Task = Box<dyn FnOnce() + Send>;

/// One `WorkerPool::run` call's completion state.
struct Batch {
    /// Tasks enqueued but not yet finished executing.
    remaining: Mutex<usize>,
    /// Signalled when `remaining` reaches zero.
    done: Condvar,
    /// A task panicked; the submitting caller re-panics after the batch
    /// drains (panics never cross thread boundaries silently).
    panicked: AtomicBool,
}

/// The queue shared between submitters and workers.
struct PoolQueue {
    tasks: VecDeque<(Arc<Batch>, Task)>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    /// Signalled when tasks are enqueued or shutdown is requested.
    work_ready: Condvar,
}

/// The lazily-spawned worker threads and their shared queue.
struct PoolInner {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

/// A persistent worker pool for level expansion: `threads − 1` OS
/// threads spawned once (lazily, on the first parallel batch) plus the
/// submitting caller, replacing the per-level `thread::scope` spawns so
/// hot paths — notably the serve loop, which expands and joins levels on
/// every cache miss — never pay thread-creation latency.
///
/// Batches may be submitted concurrently from `&self` (the engine's
/// read-path queries share one pool); the caller helps execute queued
/// tasks, then blocks until its own batch completes. Task panics are
/// caught, recorded, and re-raised on the submitting thread after the
/// batch drains, so a poisoned closure cannot strand other batches.
pub(crate) struct WorkerPool {
    threads: usize,
    inner: OnceLock<PoolInner>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads)
            .field("spawned", &self.inner.get().is_some())
            .finish()
    }
}

impl WorkerPool {
    /// A pool targeting `threads` total workers (including the caller).
    /// No OS threads are spawned until the first parallel batch runs.
    pub(crate) fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            inner: OnceLock::new(),
        }
    }

    /// The pool's degree of parallelism (caller included).
    pub(crate) fn threads(&self) -> usize {
        self.threads
    }

    fn inner(&self) -> &PoolInner {
        self.inner.get_or_init(|| {
            let shared = Arc::new(PoolShared {
                queue: Mutex::new(PoolQueue {
                    tasks: VecDeque::new(),
                    shutdown: false,
                }),
                work_ready: Condvar::new(),
            });
            let workers = (1..self.threads)
                .map(|_| {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || worker_loop(&shared))
                })
                .collect();
            PoolInner { shared, workers }
        })
    }

    /// Runs `tasks` to completion across the pool (the caller executes
    /// tasks too). Returns only after every task has finished and been
    /// dropped; re-panics if any task panicked.
    ///
    /// Tasks may borrow caller-local data: the completion wait is what
    /// makes the internal lifetime erasure sound.
    pub(crate) fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        mvq_fault::point!("pool.task");
        if self.threads <= 1 || tasks.len() <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let inner = self.inner();
        let batch = Arc::new(Batch {
            remaining: Mutex::new(tasks.len()),
            done: Condvar::new(),
            panicked: AtomicBool::new(false),
        });
        #[allow(unsafe_code)]
        let erased: Vec<Task> = tasks
            .into_iter()
            .map(|task| {
                // SAFETY: `run` does not return until `remaining` hits
                // zero, i.e. every erased task has been executed
                // (consuming its `Box`) or dropped on a panic path inside
                // `execute_task`; either way no task — and no borrow it
                // captured — outlives the `run` stack frame. `Box<dyn
                // FnOnce + Send + 'scope>` and the `'static` form are
                // layout-identical fat pointers differing only in the
                // lifetime bound being erased.
                unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(task) }
            })
            .collect();
        {
            // lint: allow(panic) pool mutexes cannot poison: tasks run under catch_unwind
            let mut queue = inner.shared.queue.lock().expect("pool queue intact");
            for task in erased {
                queue.tasks.push_back((Arc::clone(&batch), task));
            }
        }
        inner.shared.work_ready.notify_all();
        // Help: drain queued tasks (any batch) until the queue is empty.
        loop {
            let entry = {
                // lint: allow(panic) pool mutexes cannot poison: tasks run under catch_unwind
                let mut queue = inner.shared.queue.lock().expect("pool queue intact");
                queue.tasks.pop_front()
            };
            match entry {
                Some((owner, task)) => execute_task(&owner, task),
                None => break,
            }
        }
        // Wait for stragglers still executing this batch's tasks.
        // lint: allow(panic) pool mutexes cannot poison: tasks run under catch_unwind
        let mut remaining = batch.remaining.lock().expect("batch counter intact");
        while *remaining > 0 {
            // lint: allow(panic) condvar wait only fails on poison, excluded by catch_unwind
            remaining = batch.done.wait(remaining).expect("batch counter intact");
        }
        drop(remaining);
        assert!(
            !batch.panicked.load(Ordering::Relaxed),
            "worker pool task panicked"
        );
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            {
                let mut queue = inner.shared.queue.lock().expect("pool queue intact");
                queue.shutdown = true;
            }
            inner.shared.work_ready.notify_all();
            for worker in inner.workers {
                let _ = worker.join();
            }
        }
    }
}

fn execute_task(batch: &Batch, task: Task) {
    if catch_unwind(AssertUnwindSafe(task)).is_err() {
        batch.panicked.store(true, Ordering::Relaxed);
    }
    // lint: allow(panic) pool mutexes cannot poison: tasks run under catch_unwind
    let mut remaining = batch.remaining.lock().expect("batch counter intact");
    *remaining -= 1;
    if *remaining == 0 {
        drop(remaining);
        batch.done.notify_all();
    }
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let entry = {
            // lint: allow(panic) pool mutexes cannot poison: tasks run under catch_unwind
            let mut queue = shared.queue.lock().expect("pool queue intact");
            loop {
                if let Some(entry) = queue.tasks.pop_front() {
                    break Some(entry);
                }
                if queue.shutdown {
                    break None;
                }
                // lint: allow(panic) condvar wait only fails on poison, excluded by catch_unwind
                queue = shared.work_ready.wait(queue).expect("pool queue intact");
            }
        };
        match entry {
            Some((batch, task)) => execute_task(&batch, task),
            None => return,
        }
    }
}

/// Frontier metadata common to both search directions: an exact cost and
/// the library gate that produced the element along the cheapest path.
pub(crate) trait FrontierMeta: Copy + Send + Sync {
    /// The element's best-known cost.
    fn cost(&self) -> u32;
    /// Metadata for a discovery at `cost` via `gate`.
    fn with(cost: u32, gate: u8) -> Self;
}

/// A `seen` map split into `2^bits` shards by key hash, so disjoint
/// workers can insert concurrently without any lock.
///
/// With a single shard (serial engines) every operation degenerates to a
/// plain `HashMap` access — the shard hash is never computed.
#[derive(Debug, Clone)]
pub(crate) struct ShardedSeen<K, M> {
    shards: Vec<HashMap<K, M, FnvBuildHasher>>,
    /// log2 of the shard count; the shard index is the top `bits` bits
    /// of the shard hash (FNV's best-mixed bits).
    bits: u32,
}

impl<K: ShardKey, M> ShardedSeen<K, M> {
    /// A map sharded appropriately for `threads` workers.
    pub(crate) fn for_threads(threads: usize) -> Self {
        Self::with_shards(shard_count_for(threads))
    }

    fn with_shards(count: usize) -> Self {
        debug_assert!(count.is_power_of_two());
        Self {
            shards: (0..count).map(|_| HashMap::default()).collect(),
            bits: count.trailing_zeros(),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`.
    #[inline]
    pub(crate) fn shard_index(&self, key: &K) -> usize {
        if self.bits == 0 {
            0
        } else {
            (key.shard_hash() >> (64 - self.bits)) as usize
        }
    }

    pub(crate) fn get(&self, key: &K) -> Option<&M> {
        self.shards[self.shard_index(key)].get(key)
    }

    pub(crate) fn insert(&mut self, key: K, meta: M) {
        let shard = self.shard_index(&key);
        self.shards[shard].insert(key, meta);
    }

    /// The owning shard's entry for `key` (the serial insert path).
    pub(crate) fn entry(&mut self, key: K) -> Entry<'_, K, M> {
        let shard = self.shard_index(&key);
        self.shards[shard].entry(key)
    }

    /// Total number of elements across shards.
    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(HashMap::len).sum()
    }

    /// Reserves capacity for `additional` elements, spread over shards.
    pub(crate) fn reserve(&mut self, additional: usize) {
        let per_shard = additional / self.shards.len() + 1;
        for shard in &mut self.shards {
            shard.reserve(per_shard);
        }
    }

    /// Re-buckets the map for a new thread count (used when the degree of
    /// parallelism changes on a warm engine). Contents are preserved.
    pub(crate) fn reshard_for_threads(&mut self, threads: usize) {
        let count = shard_count_for(threads);
        if count == self.shards.len() {
            return;
        }
        let mut next = Self::with_shards(count);
        next.reserve(self.len());
        for shard in self.shards.drain(..) {
            for (key, meta) in shard {
                next.insert(key, meta);
            }
        }
        *self = next;
    }
}

/// Shard count for a worker count: 1 for serial engines (no shard-hash
/// overhead), otherwise a few shards per worker so the contiguous
/// phase-2 ranges stay balanced, capped at 64.
fn shard_count_for(threads: usize) -> usize {
    if threads <= 1 {
        1
    } else {
        (threads * 4).next_power_of_two().min(64)
    }
}

/// Contiguous near-equal partition of `0..len` into at most `parts`
/// non-empty ranges.
pub(crate) fn chunk_ranges(len: usize, parts: usize) -> impl Iterator<Item = (usize, usize)> {
    (0..parts)
        .map(move |w| (len * w / parts, len * (w + 1) / parts))
        .filter(|(start, end)| end > start)
}

pub(crate) fn workers_for(threads: usize, items: usize) -> usize {
    threads.min(items / MIN_ITEMS_PER_WORKER).max(1)
}

/// Order-preserving parallel map over contiguous chunks: the output is
/// identical to `items.iter().enumerate().map(f)` for any thread count.
pub(crate) fn par_map<T, U, F>(pool: &WorkerPool, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let workers = workers_for(pool.threads(), items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let f = &f;
    let ranges: Vec<(usize, usize)> = chunk_ranges(items.len(), workers).collect();
    let mut outputs: Vec<Vec<U>> = Vec::new();
    outputs.resize_with(ranges.len(), Vec::new);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
        .iter()
        .zip(outputs.iter_mut())
        .map(|(&(start, end), slot)| {
            let chunk = &items[start..end];
            Box::new(move || {
                *slot = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, t)| f(start + i, t))
                    .collect();
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run(tasks);
    let mut out = Vec::with_capacity(items.len());
    for chunk_out in outputs {
        out.extend(chunk_out);
    }
    out
}

/// Order-preserving parallel filter (used for the lazy decrease-key
/// stale-copy drop at the head of every level).
pub(crate) fn par_filter<T, P>(pool: &WorkerPool, items: Vec<T>, keep: P) -> Vec<T>
where
    T: Copy + Send + Sync,
    P: Fn(&T) -> bool + Sync,
{
    let workers = workers_for(pool.threads(), items.len());
    if workers <= 1 {
        return items.into_iter().filter(|t| keep(t)).collect();
    }
    let keep = &keep;
    let ranges: Vec<(usize, usize)> = chunk_ranges(items.len(), workers).collect();
    let mut outputs: Vec<Vec<T>> = Vec::new();
    outputs.resize_with(ranges.len(), Vec::new);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
        .iter()
        .zip(outputs.iter_mut())
        .map(|(&(start, end), slot)| {
            let chunk = &items[start..end];
            Box::new(move || {
                *slot = chunk.iter().copied().filter(|t| keep(t)).collect();
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    pool.run(tasks);
    let mut out = Vec::with_capacity(items.len());
    for chunk_out in outputs {
        out.extend(chunk_out);
    }
    out
}

/// Estimated fresh `seen` insertions a level will make, extrapolated
/// from the frontier's measured growth factor (`bucket² / previous`).
/// Reserving this up front kills the rehash churn of growing a
/// multi-million-entry map through ~20 doublings.
pub(crate) fn growth_hint(bucket_len: usize, prev_len: usize, max_factor: usize) -> usize {
    let estimate = bucket_len
        .saturating_mul(bucket_len)
        .checked_div(prev_len)
        .unwrap_or_else(|| bucket_len.saturating_mul(4));
    estimate.clamp(bucket_len, bucket_len.saturating_mul(max_factor.max(1)))
}

/// The Dijkstra admission rule, shared verbatim by the serial inline
/// loops of both frontiers and the sharded phase-2 adjudication:
/// admit a successor iff its key is new or this discovery is cheaper
/// than the recorded one (lazy decrease-key). Returns `true` when the
/// caller must push the key into its pending bucket.
#[inline]
pub(crate) fn admit<K, M: FrontierMeta>(slot: Entry<'_, K, M>, cost: u32, gate: u8) -> bool {
    match slot {
        Entry::Vacant(slot) => {
            slot.insert(M::with(cost, gate));
            true
        }
        Entry::Occupied(mut slot) if slot.get().cost() > cost => {
            slot.insert(M::with(cost, gate));
            true
        }
        Entry::Occupied(_) => false,
    }
}

/// One generated successor, tagged with its global generation sequence
/// number (`bucket index << 16 | emit index`) for deterministic
/// adjudication and merge.
#[derive(Clone, Copy)]
struct Generated<K> {
    seq: u64,
    cost: u32,
    gate: u8,
    key: K,
}

/// A successor accepted into a pending bucket (new or decrease-key).
#[derive(Clone, Copy)]
struct Pushed<K> {
    seq: u64,
    cost: u32,
    key: K,
}

/// Expands one frontier bucket in parallel: calls
/// `generate(index, element, emit)` for every bucket element (workers
/// over disjoint chunks), inserts every emitted `(key, cost, gate)`
/// successor into `seen` under the serial insert-or-decrease-key rule,
/// and returns the accepted pushes per cost, in exactly the order the
/// serial loop would have pushed them.
///
/// Requires a pool with `threads >= 2`; the serial engines keep their
/// inline loop.
pub(crate) fn expand_bucket<K, M, G>(
    pool: &WorkerPool,
    bucket: &[K],
    seen: &mut ShardedSeen<K, M>,
    expected_new: usize,
    probe: &ProbeHandle,
    generate: G,
) -> BTreeMap<u32, Vec<K>>
where
    K: ShardKey,
    M: FrontierMeta,
    G: Fn(usize, &K, &mut dyn FnMut(K, u32, u8)) + Sync,
{
    debug_assert!(pool.threads() >= 2, "serial expansion uses the inline loop");
    let shard_count = seen.shard_count();
    let workers = workers_for(pool.threads(), bucket.len());
    seen.reserve(expected_new);
    let mut staged: Vec<Vec<Pushed<K>>> = (0..shard_count).map(|_| Vec::new()).collect();
    let generate = &generate;

    for (block_idx, block) in bucket.chunks(BLOCK_ITEMS).enumerate() {
        let block_base = block_idx * BLOCK_ITEMS;

        // Phase 1 — generate: workers scan disjoint contiguous chunks and
        // route successors into per-chunk, per-shard buffers.
        let ranges: Vec<(usize, usize)> = chunk_ranges(block.len(), workers).collect();
        let mut buffers: Vec<Vec<Vec<Generated<K>>>> = Vec::new();
        buffers.resize_with(ranges.len(), Vec::new);
        {
            let seen_ro = &*seen;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
                .iter()
                .zip(buffers.iter_mut())
                .map(|(&(start, end), slot)| {
                    let chunk = &block[start..end];
                    Box::new(move || {
                        let mut bufs: Vec<Vec<Generated<K>>> =
                            (0..shard_count).map(|_| Vec::new()).collect();
                        for (offset, element) in chunk.iter().enumerate() {
                            let idx = block_base + start + offset;
                            let mut emitted = 0u64;
                            generate(idx, element, &mut |key, cost, gate| {
                                let shard = seen_ro.shard_index(&key);
                                bufs[shard].push(Generated {
                                    seq: ((idx as u64) << 16) | emitted,
                                    cost,
                                    gate,
                                    key,
                                });
                                emitted += 1;
                            });
                            debug_assert!(emitted < (1 << 16), "seq tag overflow");
                        }
                        *slot = bufs;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }

        // Phase 2 — adjudicate: workers own contiguous shard ranges and
        // drain every chunk's buffer for their shards in chunk order.
        // Chunks are contiguous index ranges, so concatenating their
        // buffers visits a shard's records in global sequence order —
        // the serial adjudication order.
        {
            let buffers = &buffers;
            let mut shard_slices: &mut [HashMap<K, M, FnvBuildHasher>] = &mut seen.shards;
            let mut staged_slices: &mut [Vec<Pushed<K>>] = &mut staged;
            let owners = workers.min(shard_count);
            let mut taken = 0usize;
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            for owner in 0..owners {
                let end = shard_count * (owner + 1) / owners;
                let count = end - taken;
                let (own_shards, rest) = shard_slices.split_at_mut(count);
                shard_slices = rest;
                let (own_staged, rest) = staged_slices.split_at_mut(count);
                staged_slices = rest;
                let base = taken;
                taken = end;
                if count == 0 {
                    continue;
                }
                tasks.push(Box::new(move || {
                    for (offset, (shard, stage)) in
                        own_shards.iter_mut().zip(own_staged.iter_mut()).enumerate()
                    {
                        let shard_idx = base + offset;
                        for chunk_bufs in buffers {
                            for g in &chunk_bufs[shard_idx] {
                                if admit(shard.entry(g.key), g.cost, g.gate) {
                                    stage.push(Pushed {
                                        seq: g.seq,
                                        cost: g.cost,
                                        key: g.key,
                                    });
                                }
                            }
                        }
                    }
                }));
            }
            pool.run(tasks);
        }
    }

    if probe.is_set() {
        // Per-shard staged lengths expose how evenly the hash routed
        // this bucket's accepted pushes across shards.
        let mut min = u64::MAX;
        let mut max = 0u64;
        let mut total = 0u64;
        for stage in &staged {
            let n = stage.len() as u64;
            min = min.min(n);
            max = max.max(n);
            total += n;
        }
        if staged.is_empty() {
            min = 0;
        }
        probe.on(|p| p.bucket_sharded(min, max, total, staged.len() as u64));
    }
    merge_staged(staged)
}

/// K-way merges the per-shard push lists (each already sequence-sorted)
/// back into global sequence order, bucketed by cost — reproducing the
/// serial loop's pending-bucket contents exactly.
fn merge_staged<K: Copy>(staged: Vec<Vec<Pushed<K>>>) -> BTreeMap<u32, Vec<K>> {
    let mut out: BTreeMap<u32, Vec<K>> = BTreeMap::new();
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> = staged
        .iter()
        .enumerate()
        .filter(|(_, pushes)| !pushes.is_empty())
        .map(|(shard, pushes)| Reverse((pushes[0].seq, shard)))
        .collect();
    let mut cursors = vec![0usize; staged.len()];
    while let Some(Reverse((_, shard))) = heap.pop() {
        let push = &staged[shard][cursors[shard]];
        out.entry(push.cost).or_default().push(push.key);
        cursors[shard] += 1;
        if let Some(next) = staged[shard].get(cursors[shard]) {
            heap.push(Reverse((next.seq, shard)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct TestMeta {
        cost: u32,
        gate: u8,
    }

    impl FrontierMeta for TestMeta {
        fn cost(&self) -> u32 {
            self.cost
        }
        fn with(cost: u32, gate: u8) -> Self {
            Self { cost, gate }
        }
    }

    #[test]
    fn explicit_request_wins() {
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        assert!(resolve_threads(None) >= 1);
    }

    #[test]
    fn shard_counts() {
        assert_eq!(shard_count_for(1), 1);
        assert_eq!(shard_count_for(2), 8);
        assert_eq!(shard_count_for(4), 16);
        assert_eq!(shard_count_for(8), 32);
        assert_eq!(shard_count_for(64), 64);
    }

    #[test]
    fn sharded_map_roundtrips_and_reshards() {
        let mut map: ShardedSeen<u64, TestMeta> = ShardedSeen::for_threads(4);
        for k in 0..1000u64 {
            map.insert(k, TestMeta::with(k as u32, 0));
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&123).map(|m| m.cost), Some(123));
        map.reshard_for_threads(1);
        assert_eq!(map.shard_count(), 1);
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&999).map(|m| m.cost), Some(999));
        map.reshard_for_threads(8);
        assert_eq!(map.shard_count(), 32);
        assert_eq!(map.get(&0).map(|m| m.cost), Some(0));
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..5000).collect();
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let doubled = par_map(&pool, &items, |i, &x| {
                assert_eq!(i as u64, x);
                x * 2
            });
            assert_eq!(doubled.len(), items.len());
            assert!(doubled.iter().enumerate().all(|(i, &v)| v == 2 * i as u64));
        }
    }

    #[test]
    fn par_filter_preserves_order() {
        let items: Vec<u64> = (0..5000).collect();
        for threads in [1, 2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let evens = par_filter(&pool, items.clone(), |&x| x % 2 == 0);
            assert_eq!(evens.len(), 2500);
            assert!(evens.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn pool_spawns_lazily_and_is_reusable() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.threads(), 4);
        assert!(pool.inner.get().is_none(), "no batch yet, no threads");
        // Single-task batches run inline without spawning.
        let mut hit = false;
        pool.run(vec![Box::new(|| hit = true)]);
        assert!(hit);
        assert!(pool.inner.get().is_none());
        // A real batch spawns once; repeated batches reuse the workers.
        for round in 0..50u64 {
            let items: Vec<u64> = (0..1000).map(|i| i + round).collect();
            let sum: u64 = par_map(&pool, &items, |_, &x| x * 2).iter().sum();
            assert_eq!(sum, items.iter().sum::<u64>() * 2);
        }
        assert!(pool.inner.get().is_some());
        assert_eq!(pool.inner.get().unwrap().workers.len(), 3);
    }

    #[test]
    fn pool_runs_concurrent_batches_from_shared_ref() {
        // Read-path queries share the engine's pool via `&self`: batches
        // submitted from several threads at once must all complete.
        let pool = WorkerPool::new(4);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let pool = &pool;
                scope.spawn(move || {
                    for round in 0..20 {
                        let items: Vec<u64> = (0..500).map(|i| i * t + round).collect();
                        let got = par_map(pool, &items, |_, &x| x + 1);
                        assert!(got.iter().zip(&items).all(|(g, i)| *g == i + 1));
                    }
                });
            }
        });
    }

    #[test]
    fn pool_task_panic_propagates_to_submitter() {
        let pool = WorkerPool::new(2);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send>> = (0..4)
                .map(|i| Box::new(move || assert!(i != 2, "boom")) as Box<dyn FnOnce() + Send>)
                .collect();
            pool.run(tasks);
        }));
        assert!(result.is_err(), "panic must reach the submitter");
        // The pool survives a panicked batch.
        let items: Vec<u64> = (0..1000).collect();
        assert_eq!(par_map(&pool, &items, |_, &x| x).len(), 1000);
    }

    #[test]
    fn growth_hint_extrapolates_and_clamps() {
        // 100 → 400: factor 4, next level estimated 1600.
        assert_eq!(growth_hint(400, 100, 18), 1600);
        // No history: 4× fallback.
        assert_eq!(growth_hint(10, 0, 18), 40);
        // Clamped to bucket × max factor.
        assert_eq!(growth_hint(1000, 1, 18), 18_000);
        // Never below the bucket itself.
        assert_eq!(growth_hint(100, 1000, 18), 100);
    }

    /// Toy successor graph with heavy collisions (many words share a
    /// successor) and word-dependent costs, so both the first-seen dedup
    /// rule and the within-level decrease-key rule are exercised.
    fn toy_successor(word: u64, gate: u8) -> (u64, u32) {
        let next = (word / 3 + u64::from(gate) * 37) % 1024;
        let cost = 10 + ((word >> 3) % 3) as u32 + u32::from(gate % 2);
        (next, cost)
    }

    /// Serial reference for `expand_bucket`: the exact loop the engines
    /// run inline.
    fn serial_reference(
        bucket: &[u64],
        seen: &mut HashMap<u64, TestMeta>,
    ) -> BTreeMap<u32, Vec<u64>> {
        let mut pending: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for &word in bucket {
            for gate in 0..6u8 {
                let (next, next_cost) = toy_successor(word, gate);
                match seen.entry(next) {
                    Entry::Vacant(slot) => {
                        slot.insert(TestMeta::with(next_cost, gate));
                        pending.entry(next_cost).or_default().push(next);
                    }
                    Entry::Occupied(mut slot) if slot.get().cost > next_cost => {
                        slot.insert(TestMeta::with(next_cost, gate));
                        pending.entry(next_cost).or_default().push(next);
                    }
                    Entry::Occupied(_) => {}
                }
            }
        }
        pending
    }

    #[test]
    fn expand_bucket_matches_serial_reference() {
        let bucket: Vec<u64> = (0..4000).map(|i| i * 7919).collect();
        let mut reference_seen = HashMap::new();
        let reference = serial_reference(&bucket, &mut reference_seen);
        assert!(!reference.is_empty());
        for threads in [2, 4, 8] {
            let pool = WorkerPool::new(threads);
            let mut seen: ShardedSeen<u64, TestMeta> = ShardedSeen::for_threads(threads);
            let probe = ProbeHandle::none();
            let pushes =
                expand_bucket(&pool, &bucket, &mut seen, 1000, &probe, |_, &word, emit| {
                    for gate in 0..6u8 {
                        let (next, cost) = toy_successor(word, gate);
                        emit(next, cost, gate);
                    }
                });
            assert_eq!(pushes, reference, "threads = {threads}");
            assert_eq!(seen.len(), reference_seen.len(), "threads = {threads}");
            for (key, meta) in &reference_seen {
                assert_eq!(seen.get(key).map(|m| m.cost), Some(meta.cost));
            }
        }
    }
}
