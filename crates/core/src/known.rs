//! The named circuits and permutations of the paper's experimental
//! section: Peres, Toffoli, Fredkin, and the four G\[4\] representatives
//! g1–g4 (Figures 4–7).
//!
//! All permutations act on the 8 binary patterns of a 3-wire register,
//! indexed 1 (`000`) through 8 (`111`), wire `A` most significant.

use mvq_logic::Gate;
use mvq_perm::Perm;

use crate::Circuit;

/// The Peres permutation `g1 = (5,7,6,8)`: `P = A`, `Q = A⊕B`,
/// `R = C⊕AB`.
///
/// # Examples
///
/// ```
/// use mvq_core::known;
/// assert_eq!(known::peres_perm().to_string(), "(5,7,6,8)");
/// ```
pub fn peres_perm() -> Perm {
    "(5,7,6,8)".parse::<Perm>().expect("valid").extended(8)
}

/// The Toffoli permutation `(7,8)`: `R = C ⊕ AB`.
pub fn toffoli_perm() -> Perm {
    "(7,8)".parse::<Perm>().expect("valid").extended(8)
}

/// Parses a user-supplied reversible target: cycle notation over the 8
/// binary patterns, extended to degree 8 — the one grammar shared by
/// the CLI (`mvq synth`) and the service (`POST /synthesize`).
///
/// # Errors
///
/// A human-readable message for malformed notation or patterns outside
/// `1..=8`.
///
/// # Examples
///
/// ```
/// use mvq_core::known;
///
/// assert_eq!(
///     known::parse_binary_target("(7,8)").unwrap(),
///     known::toffoli_perm()
/// );
/// assert!(known::parse_binary_target("(1,9)").is_err());
/// assert!(known::parse_binary_target("(1,x)").is_err());
/// ```
pub fn parse_binary_target(text: &str) -> Result<Perm, String> {
    parse_target_on(text, 8)
}

/// [`parse_binary_target`] over an arbitrary register size: cycle
/// notation over the `patterns = 2^n` binary patterns, extended to
/// degree `patterns` — used by the CLI's `--wires` flag and the
/// service's `wires` field to accept 4-wire targets (patterns 1..=16).
///
/// # Errors
///
/// A human-readable message for malformed notation or patterns outside
/// `1..=patterns`.
///
/// # Examples
///
/// ```
/// use mvq_core::known;
///
/// // The 4-wire CNOT D ^= A.
/// let p = known::parse_target_on("(9,10)(11,12)(13,14)(15,16)", 16).unwrap();
/// assert_eq!(p.degree(), 16);
/// assert!(known::parse_target_on("(15,16)", 8).is_err());
/// ```
pub fn parse_target_on(text: &str, patterns: usize) -> Result<Perm, String> {
    let perm: Perm = text
        .parse()
        .map_err(|err| format!("bad target `{text}`: {err}"))?;
    if perm.degree() > patterns {
        return Err(format!(
            "target `{text}` must permute patterns 1..={patterns}"
        ));
    }
    Ok(perm.extended(patterns))
}

/// The Fredkin permutation `(6,7)`: controlled swap of `B`, `C` by `A`.
pub fn fredkin_perm() -> Perm {
    "(6,7)".parse::<Perm>().expect("valid").extended(8)
}

/// The g2 permutation `(5,8,7,6)`: `P = A`, `Q = B⊕AC'`, `R = C⊕A`
/// (Figure 5).
pub fn g2_perm() -> Perm {
    "(5,8,7,6)".parse::<Perm>().expect("valid").extended(8)
}

/// The g3 permutation `(3,4)(5,7)(6,8)`: `P = A`, `Q = B⊕A`, `R = C⊕A'B`
/// (Figure 6).
pub fn g3_perm() -> Perm {
    "(3,4)(5,7)(6,8)"
        .parse::<Perm>()
        .expect("valid")
        .extended(8)
}

/// The g4 permutation `(3,4)(5,8)(6,7)`: `P = A`, `Q = B⊕A`,
/// `R = C'⊕A'B'` (Figure 7).
pub fn g4_perm() -> Perm {
    "(3,4)(5,8)(6,7)"
        .parse::<Perm>()
        .expect("valid")
        .extended(8)
}

/// Figure 4: `g1 = VCB * FBA * VCA * V⁺CB` — the Peres circuit.
pub fn peres_circuit() -> Circuit {
    Circuit::new(
        3,
        vec![
            Gate::v(2, 1),
            Gate::feynman(1, 0),
            Gate::v(2, 0),
            Gate::v_dagger(2, 1),
        ],
    )
}

/// Figure 8: the Hermitian-adjoint implementation of Peres
/// (`V⁺CB * FBA * V⁺CA * VCB`: every V swapped with V⁺).
pub fn peres_adjoint_circuit() -> Circuit {
    peres_circuit().vswapped()
}

/// Figure 5: `g2 = V⁺BC * FCA * VBA * VBC`.
pub fn g2_circuit() -> Circuit {
    Circuit::new(
        3,
        vec![
            Gate::v_dagger(1, 2),
            Gate::feynman(2, 0),
            Gate::v(1, 0),
            Gate::v(1, 2),
        ],
    )
}

/// Figure 6: `g3 = VCB * FBA * V⁺CA * VCB`.
pub fn g3_circuit() -> Circuit {
    Circuit::new(
        3,
        vec![
            Gate::v(2, 1),
            Gate::feynman(1, 0),
            Gate::v_dagger(2, 0),
            Gate::v(2, 1),
        ],
    )
}

/// Figure 7: `g4 = VCB * FBA * VCA * VCB`.
pub fn g4_circuit() -> Circuit {
    Circuit::new(
        3,
        vec![
            Gate::v(2, 1),
            Gate::feynman(1, 0),
            Gate::v(2, 0),
            Gate::v(2, 1),
        ],
    )
}

/// Figure 9 (a): `To = FBA * V⁺CB * FBA * VCA * VCB`.
pub fn toffoli_circuit_a() -> Circuit {
    Circuit::new(
        3,
        vec![
            Gate::feynman(1, 0),
            Gate::v_dagger(2, 1),
            Gate::feynman(1, 0),
            Gate::v(2, 0),
            Gate::v(2, 1),
        ],
    )
}

/// Figure 9 (b): `To = FBA * VCB * FBA * V⁺CA * V⁺CB` — the Hermitian
/// adjoint of (a).
pub fn toffoli_circuit_b() -> Circuit {
    toffoli_circuit_a().vswapped()
}

/// Figure 9 (c): `To = FAB * V⁺CA * FAB * VCA * VCB`.
pub fn toffoli_circuit_c() -> Circuit {
    Circuit::new(
        3,
        vec![
            Gate::feynman(0, 1),
            Gate::v_dagger(2, 0),
            Gate::feynman(0, 1),
            Gate::v(2, 0),
            Gate::v(2, 1),
        ],
    )
}

/// Figure 9 (d): `To = FAB * VCA * FAB * V⁺CA * V⁺CB` — the Hermitian
/// adjoint of (c).
pub fn toffoli_circuit_d() -> Circuit {
    toffoli_circuit_c().vswapped()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_peres() {
        let c = peres_circuit();
        assert_eq!(c.to_string(), "VCB*FBA*VCA*V+CB");
        assert_eq!(c.binary_perm().unwrap(), peres_perm());
        assert!(c.verify_against_binary_perm(&peres_perm()));
    }

    #[test]
    fn figure_8_adjoint_peres() {
        let c = peres_adjoint_circuit();
        assert_eq!(c.to_string(), "V+CB*FBA*V+CA*VCB");
        assert!(c.verify_against_binary_perm(&peres_perm()));
    }

    #[test]
    fn figure_5_g2() {
        let c = g2_circuit();
        assert_eq!(c.binary_perm().unwrap(), g2_perm());
        // Boolean spec: P = A, Q = B⊕AC', R = C⊕A.
        for bits in 0..8usize {
            let (a, b, cc) = (bits >> 2 & 1, bits >> 1 & 1, bits & 1);
            let want = (a << 2) | ((b ^ (a & (cc ^ 1))) << 1) | (cc ^ a);
            assert_eq!(g2_perm().image(bits + 1) - 1, want, "bits {bits:03b}");
        }
    }

    #[test]
    fn figure_6_g3() {
        let c = g3_circuit();
        assert_eq!(c.binary_perm().unwrap(), g3_perm());
        // P = A, Q = B⊕A, R = C⊕A'B.
        for bits in 0..8usize {
            let (a, b, cc) = (bits >> 2 & 1, bits >> 1 & 1, bits & 1);
            let want = (a << 2) | ((b ^ a) << 1) | (cc ^ ((a ^ 1) & b));
            assert_eq!(g3_perm().image(bits + 1) - 1, want, "bits {bits:03b}");
        }
    }

    #[test]
    fn figure_7_g4() {
        let c = g4_circuit();
        assert_eq!(c.binary_perm().unwrap(), g4_perm());
        // P = A, Q = B⊕A, R = C'⊕A'B'.
        for bits in 0..8usize {
            let (a, b, cc) = (bits >> 2 & 1, bits >> 1 & 1, bits & 1);
            let want = (a << 2) | ((b ^ a) << 1) | (cc ^ 1 ^ ((a ^ 1) & (b ^ 1)));
            assert_eq!(g4_perm().image(bits + 1) - 1, want, "bits {bits:03b}");
        }
    }

    #[test]
    fn figure_9_all_four_toffoli_implementations() {
        for (name, c) in [
            ("a", toffoli_circuit_a()),
            ("b", toffoli_circuit_b()),
            ("c", toffoli_circuit_c()),
            ("d", toffoli_circuit_d()),
        ] {
            assert_eq!(c.quantum_cost(), 5, "cost of ({name})");
            assert!(
                c.verify_against_binary_perm(&toffoli_perm()),
                "Figure 9({name}) realizes Toffoli"
            );
        }
    }

    #[test]
    fn figure_9_pairs_are_vswaps() {
        assert_eq!(toffoli_circuit_a().vswapped(), toffoli_circuit_b());
        assert_eq!(toffoli_circuit_c().vswapped(), toffoli_circuit_d());
    }

    #[test]
    fn g_permutation_orders() {
        // g1, g2 are 4-cycles; g3, g4 are products of transpositions.
        assert_eq!(peres_perm().order(), 4);
        assert_eq!(g2_perm().order(), 4);
        assert_eq!(g3_perm().order(), 2);
        assert_eq!(g4_perm().order(), 2);
    }

    #[test]
    fn fredkin_is_controlled_swap() {
        let p = fredkin_perm();
        // (1,1,0) ↔ (1,0,1): indices 7 ↔ 6.
        assert_eq!(p.image(6), 7);
        assert_eq!(p.image(7), 6);
        assert_eq!(p.image(5), 5);
    }
}
