//! Shared helpers for mvq examples.
