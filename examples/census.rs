//! Reproduces the paper's Table 2: the number of reversible circuits with
//! each quantum cost k, found by exhaustive FMCF search.
//!
//! Run with: `cargo run --release -p mvq-examples --example census [cb]`
//! (default bound 6; the paper's bound is 7 — about 15 s and ~3 GB).

use mvq_core::{Census, EXPECTED_TABLE_2, PAPER_TABLE_2};

fn main() {
    let cb: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    println!("=== Table 2 reproduction: FMCF census up to cost {cb} ===\n");
    let census = Census::compute(cb);
    println!("{census}\n");

    println!("paper Table 2 (printed): {PAPER_TABLE_2:?}");
    println!("verified counts:         {EXPECTED_TABLE_2:?}");
    let diffs = census.diff_vs_paper();
    if diffs.is_empty() {
        println!("all computed rows match the paper's printed table");
    } else {
        for (k, mine, paper) in diffs {
            println!(
                "k = {k}: measured {mine} vs paper {paper} — the paper's value \
                 double-counts commuting Feynman cascades (see DESIGN.md / EXPERIMENTS.md)"
            );
        }
    }
    assert!(
        census.matches_expected(),
        "census must match verified counts"
    );
    println!("\ncensus matches the independently verified counts ✓");
}
