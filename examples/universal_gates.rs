//! Reproduces the Section 5 analysis of G[4]: 60 Feynman-only circuits
//! plus 24 control-gate circuits, every one of which is a universal gate
//! (with NOT and Feynman), falling into 4 wire-relabeling orbits whose
//! representatives are g1 (Peres), g2, g3, g4.
//!
//! Run with: `cargo run --release -p mvq-examples --example universal_gates`

use mvq_core::{known, universal, SynthesisEngine};
use mvq_perm::{Group, StabilizerChain};

fn main() {
    println!("=== G[4] structure and universality (Section 5) ===\n");

    let mut engine = SynthesisEngine::unit_cost();
    let analysis = universal::analyze_g4(&mut engine);

    println!("|G[4]| = {}", analysis.members.len());
    println!("  Feynman-only circuits: {}", analysis.feynman_only().len());
    println!(
        "  circuits with control gates: {}",
        analysis.with_control_gates().len()
    );
    assert_eq!(analysis.members.len(), 84);
    assert_eq!(analysis.feynman_only().len(), 60);
    assert_eq!(analysis.with_control_gates().len(), 24);

    // Universality: every control-gate member generates S8 with NOT and
    // Feynman gates.
    let universal_control = analysis
        .with_control_gates()
        .iter()
        .filter(|m| m.universal)
        .count();
    println!(
        "\nuniversal among the 24 control-gate circuits: {universal_control} \
         (paper: all 24)"
    );
    assert_eq!(universal_control, 24);
    // And no Feynman-only member is universal (they are linear maps).
    assert!(analysis.feynman_only().iter().all(|m| !m.universal));

    // The 4 orbits under wire relabeling.
    let orbits = analysis.wire_permutation_orbits();
    println!(
        "\nwire-relabeling orbits: {} (paper: 4 representatives × 6)",
        orbits.len()
    );
    for (i, orbit) in orbits.iter().enumerate() {
        println!("  orbit {}: {} members", i + 1, orbit.len());
    }
    assert_eq!(orbits.len(), 4);

    // Match each orbit to the paper's representative.
    let reps = [
        ("g1 (Peres)", known::peres_perm()),
        ("g2", known::g2_perm()),
        ("g3", known::g3_perm()),
        ("g4", known::g4_perm()),
    ];
    for (name, perm) in &reps {
        let orbit = orbits
            .iter()
            .position(|o| o.contains(perm))
            .expect("representative is in some orbit");
        println!("  {name} = {perm} lies in orbit {}", orbit + 1);
    }

    // Group orders from the Theorem 2 discussion.
    println!("\n=== group orders (Theorem 2) ===");
    let g = universal::feynman_peres_group();
    println!("|G|  (Feynman + Peres closure)      = {}", g.order());
    let s8 = Group::symmetric(8);
    println!("|S8|                                = {}", s8.order());
    assert_eq!(g.order(), 5040);
    assert_eq!(s8.order(), 40320);

    // Universality of Peres via Schreier–Sims (order check without
    // materializing S8).
    let mut gens = vec![known::peres_perm()];
    gens.extend(Group::not_group(3).generators().to_vec());
    gens.extend(universal::feynman_binary_perms());
    let chain = StabilizerChain::new(8, &gens);
    println!(
        "closure(Peres, NOT, Feynman) order   = {} (Schreier–Sims)",
        chain.order()
    );
    assert_eq!(chain.order(), 40320);
    println!("\nall Section 5 universality claims verified ✓");
}
