//! Reproduces Figures 4–8: the Peres circuit and the g1–g4 family of
//! cost-4 universal gates.
//!
//! Run with: `cargo run --release -p mvq-examples --example peres`

use std::time::Instant;

use mvq_core::{known, SynthesisEngine};

fn main() {
    println!("=== Figures 4–8: the Peres family ===\n");

    // Figure 4: the paper's published Peres implementation.
    let paper_peres = known::peres_circuit();
    println!("Figure 4 (paper): {paper_peres}");
    println!("{}\n", paper_peres.diagram());
    assert!(paper_peres.verify_against_binary_perm(&known::peres_perm()));

    // Figure 8: the Hermitian-adjoint implementation (V ↔ V⁺ swapped).
    let adjoint = known::peres_adjoint_circuit();
    println!("Figure 8 (Hermitian adjoint): {adjoint}");
    println!("{}\n", adjoint.diagram());
    assert!(adjoint.verify_against_binary_perm(&known::peres_perm()));

    // Synthesize Peres from scratch and report what MCE finds.
    let mut engine = SynthesisEngine::unit_cost();
    let start = Instant::now();
    let found = engine.synthesize_all(&known::peres_perm(), 5);
    println!(
        "MCE synthesis: cost {}, {} distinct implementations ({:.2?})",
        found[0].cost,
        found.len(),
        start.elapsed()
    );
    println!("(paper: cost 4, two implementations, 9 s on an 850 MHz P-III)");
    for syn in &found {
        println!("  {}", syn.circuit);
        assert!(syn.circuit.verify_against_binary_perm(&known::peres_perm()));
    }

    // Figures 5–7: the other three representatives.
    println!("\n=== The g2, g3, g4 representatives (Figures 5–7) ===");
    for (name, perm, circuit) in [
        ("g2", known::g2_perm(), known::g2_circuit()),
        ("g3", known::g3_perm(), known::g3_circuit()),
        ("g4", known::g4_perm(), known::g4_circuit()),
    ] {
        println!("\n{name} = {perm} = {circuit}");
        println!("{}", circuit.diagram());
        assert!(circuit.verify_against_binary_perm(&perm));
        let syn = engine.synthesize(&perm, 5).expect("cost 4");
        assert_eq!(syn.cost, 4, "{name} has minimal cost 4");
        println!("minimal cost (MCE): {} ✓", syn.cost);
    }
    println!("\nall figures verified at the exact unitary level ✓");
}
