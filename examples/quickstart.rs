//! Quickstart: synthesize the Toffoli gate from truly quantum 2-qubit
//! gates and verify the result at the unitary level.
//!
//! Reproduces the paper's headline experiment (Section 5, Figure 9):
//! Toffoli has minimal quantum cost 5, with four distinct minimal
//! implementations forming two Hermitian-adjoint pairs.
//!
//! Run with: `cargo run --release -p mvq-examples --example quickstart`

use std::time::Instant;

use mvq_core::{known, SynthesisEngine};

fn main() {
    println!("=== mvq quickstart: exact synthesis of the Toffoli gate ===\n");

    // The synthesis target: Toffoli as a permutation of the 8 binary
    // patterns — it swaps |110⟩ and |111⟩, i.e. (7,8).
    let target = known::toffoli_perm();
    println!("target (Toffoli): {target}\n");

    let mut engine = SynthesisEngine::unit_cost();

    let start = Instant::now();
    let all = engine.synthesize_all(&target, 6);
    let elapsed = start.elapsed();

    assert!(!all.is_empty(), "Toffoli must be reachable at cost 5");
    println!(
        "minimal quantum cost: {}  ({} distinct implementations, {:.2?})",
        all[0].cost,
        all.len(),
        elapsed
    );
    println!("(paper: cost 5, four implementations, 98 s on an 850 MHz P-III)\n");

    for (i, syn) in all.iter().enumerate() {
        println!("implementation {}: {}", i + 1, syn.circuit);
        println!("{}\n", syn.circuit.diagram());
        assert!(
            syn.circuit.verify_against_binary_perm(&target),
            "unitary-level verification"
        );
    }
    println!("all implementations verified against the exact 8×8 Toffoli unitary ✓");

    // The Hermitian-adjoint pairing of Figure 9: swapping V ↔ V⁺ maps the
    // implementation set onto itself.
    let set: Vec<String> = all.iter().map(|s| s.circuit.to_string()).collect();
    let closed = all
        .iter()
        .all(|s| set.contains(&s.circuit.vswapped().to_string()));
    println!(
        "V ↔ V⁺ swap maps the implementation set onto itself: {}",
        if closed { "yes ✓" } else { "no ✗" }
    );
}
