//! Section 4: quantum-realized probabilistic machines.
//!
//! Synthesizes a controlled quantum random-number generator from a
//! quaternary specification, runs it through the measurement unit, and
//! compares empirical frequencies against the exact dyadic probabilities.
//! Then drives a two-state quantum hidden Markov model (Figure 3's
//! machine with feedback).
//!
//! Run with: `cargo run --release -p mvq-examples --example quantum_rng`

use mvq_automata::{ControlledRng, QuantumHmm};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(20260612);

    println!("=== Section 4: controlled quantum random number generator ===\n");
    let generator = ControlledRng::synthesize().expect("spec is realizable");
    println!(
        "synthesized circuit: {} (quantum cost {})",
        generator.block().circuit(),
        generator.quantum_cost()
    );
    println!("{}\n", generator.block().circuit().diagram());

    // Exact probabilities from the measurement distribution.
    let enabled = generator.block().output_distribution(0b10);
    println!(
        "enabled:  P(bit = 0) = {}, P(bit = 1) = {}",
        enabled.prob_of(0b10),
        enabled.prob_of(0b11)
    );
    let disabled = generator.block().output_distribution(0b00);
    println!(
        "disabled: deterministic = {}\n",
        disabled.is_deterministic()
    );

    // Empirical check.
    const N: usize = 100_000;
    let bits = generator.generate(&mut rng, N, true);
    let ones = bits.iter().filter(|&&b| b).count();
    println!(
        "empirical over {N} samples: P(1) ≈ {:.4} (exact: 0.5)",
        ones as f64 / N as f64
    );
    let zeros_only = generator.generate(&mut rng, 1000, false);
    println!(
        "disabled over 1000 samples: all zeros = {}\n",
        zeros_only.iter().all(|&b| !b)
    );

    println!("=== Section 4: two-state quantum hidden Markov model ===\n");
    let mut hmm = QuantumHmm::new();
    println!("transition matrix (exact):");
    for s in 0..2 {
        println!(
            "  P(S'=0 | S={s}) = {}, P(S'=1 | S={s}) = {}",
            hmm.transition_prob(s, 0),
            hmm.transition_prob(s, 1)
        );
    }
    let obs = hmm.emit(&mut rng, N);
    let ones = obs.iter().filter(|&&b| b).count();
    println!(
        "\nemitted {N} observations, P(1) ≈ {:.4} (stationary: 0.5)",
        ones as f64 / N as f64
    );

    // Autocorrelation of the observation stream: each emission is the
    // complement of the fresh hidden state, which is an independent coin,
    // so successive observations should be uncorrelated.
    let agree = obs.windows(2).filter(|w| w[0] == w[1]).count();
    println!(
        "lag-1 agreement ≈ {:.4} (independent coins: 0.5)",
        agree as f64 / (N - 1) as f64
    );
    println!("\nprobabilistic machine behaviour matches the exact dyadic model ✓");
}
