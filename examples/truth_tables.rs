//! Reproduces Table 1 (the 16-row truth table of the 2-qubit controlled-V
//! gate and its permutation representation) and the Section 3 permutation
//! formulae for the 3-qubit gates and banned sets.
//!
//! Run with: `cargo run --release -p mvq-examples --example truth_tables`

use mvq_logic::{Gate, GateLibrary, PatternDomain, TruthTable};

fn main() {
    println!("=== Table 1: truth table of the Ctrl-V gate ===\n");
    let table = TruthTable::new(Gate::v(1, 0), PatternDomain::table_ordered(2));
    println!("{table}\n");
    assert_eq!(table.perm().to_string(), "(3,7,4,8)");
    println!("permutation representation matches the paper: (3,7,4,8) ✓\n");

    println!("=== Section 3: 3-qubit gate permutations on the 38-pattern domain ===\n");
    let domain = PatternDomain::permutable(3);
    println!("domain size: {} (= 4³ − 3³ + 1)\n", domain.len());

    for (name, gate, paper) in [
        (
            "VBA",
            Gate::v(1, 0),
            "(5,17,7,21)(6,18,8,22)(13,19,15,23)(14,20,16,24)",
        ),
        (
            "V+AB",
            Gate::v_dagger(0, 1),
            "(3,33,7,26)(4,34,8,27)(9,35,15,28)(10,36,16,29)",
        ),
        ("FeCA", Gate::feynman(2, 0), "(5,6)(7,8)(17,18)(21,22)"),
    ] {
        let perm = gate.perm(&domain);
        let status = if perm.to_string() == paper {
            "✓"
        } else {
            "✗"
        };
        println!("{name} = {perm} {status}");
        assert_eq!(perm.to_string(), paper);
    }

    println!("\n=== Section 3: banned sets ===\n");
    let lib = GateLibrary::standard(3);
    let banned = lib.banned_sets();
    println!("N_A  = {:?}", banned.n_a);
    println!("N_B  = {:?}", banned.n_b);
    println!("N_C  = {:?}", banned.n_c);
    println!("N_AB = {:?}", banned.n_ab);
    println!("N_AC = {:?}", banned.n_ac);
    println!("N_BC = {:?}", banned.n_bc);
    assert_eq!(banned.n_a, (25..=38).collect::<Vec<_>>());
    println!("\nall Section 3 formulae match the paper ✓");
}
